//! `asb-analyze` — workspace invariant lints.
//!
//! A dependency-free, source-level lint pass enforcing repo-specific rules
//! that clippy cannot express (see [`RULES`] for the catalog). The design
//! trades parsing fidelity for zero dependencies: a line-oriented scanner
//! with a comment/string stripper and a brace-depth tracker is enough for
//! every rule here, because the rules target *tokens that should not appear
//! at all* (outside justified spots) rather than deep syntactic structure.
//!
//! ## Anatomy of a rule
//!
//! Each rule implements one check over a [`PreparedFile`]: the file split
//! into [`Line`]s, each carrying the code text with string/char literals
//! blanked and comments removed, the comment text itself (rules look for
//! justification markers there), and whether the line sits inside a
//! `#[cfg(test)]` region. Violations carry `file:line` and a message; the
//! driver subtracts the allowlist (`crates/analyze/allowlist.txt`) and the
//! remainder is fatal.
//!
//! Adding a rule: add a variant to [`RULES`], implement its check in
//! [`check_file`], document it in `DESIGN.md` §11, and give it an `explain`
//! entry — the `explain` text is the contract reviewers hold the rule to.

use std::fmt;
use std::path::{Path, PathBuf};

/// Identifier, summary and rationale of one lint rule.
pub struct Rule {
    /// Stable id used in diagnostics and the allowlist (e.g. `no-panic`).
    pub id: &'static str,
    /// One-line summary shown by `list`.
    pub summary: &'static str,
    /// Full rationale shown by `explain`.
    pub explain: &'static str,
}

/// The rule catalog.
pub const RULES: &[Rule] = &[
    Rule {
        id: "no-panic",
        summary: "no unwrap()/expect()/panic! in asb-core and asb-storage non-test code",
        explain: "\
Buffer and storage code sits under every index and experiment; a panic
there takes down the whole process where a typed StorageError would have
been retried, surfaced, or measured. Non-test code in crates/core and
crates/storage must return typed errors instead of calling .unwrap(),
.expect(), panic!, unreachable!, todo! or unimplemented!.

A genuinely unreachable expect is allowed when the invariant that makes it
unreachable is written down: put a `// invariant: ...` comment on the same
line or the line above, stating *why* the failure cannot happen (not just
that it doesn't). assert!/debug_assert! are out of scope: they check caller
contracts, and turning them into Results would hide caller bugs.",
    },
    Rule {
        id: "sync-facade",
        summary: "no direct parking_lot/std::sync primitive use outside the sync facade",
        explain: "\
All locks and atomics must come from the sync facade (asb_storage::sync,
re-exported as asb_core::sync). The facade compiles to the parking_lot shim
normally and to the deterministic scheduler under --cfg asb_schedule; a
Mutex constructed directly from parking_lot or std::sync is invisible to
the model checker, so the interleaving suite would silently not explore
it. std::sync::Arc, mpsc and PoisonError are fine (they are not schedule
points); the facade itself and shims/ are exempt by construction.",
    },
    Rule {
        id: "relaxed-ok",
        summary: "every Ordering::Relaxed needs a `// relaxed-ok:` justification",
        explain: "\
Relaxed atomics are correct only when the value is independent of all other
memory (a lone counter or flag) — and that argument lives in the head of
whoever wrote it unless it is written down. Each use of Ordering::Relaxed
must carry a `// relaxed-ok: ...` comment on the same line or the line
above stating why no ordering is needed. If the justification feels hard
to write, the ordering is probably wrong: use Acquire/Release/SeqCst.",
    },
    Rule {
        id: "wal-order",
        summary: "WAL append must precede store write within a function that does both",
        explain: "\
The crash-consistency contract is write-ahead logging: a page image reaches
the log before the store write that makes it durable, so a crash between
the two is always recoverable. Within any single non-test function body
that both appends to the WAL (wal_append/append_image) and writes the
store (store_with_retry/io.store/store.write), the first WAL call must
appear before the first store call in source order. This is a source-order
heuristic, not a data-flow proof — the interleaving suite's WalOrderProbe
checks the runtime property; this rule catches the obvious regression of
reordering the calls in a refactor.",
    },
    Rule {
        id: "guard-scope",
        summary: "page guards must not be forgotten or held across checkpoint/flush",
        explain: "\
PageReadGuard/PageWriteGuard pin a frame until dropped: the pin is what
makes eviction safe, and the drop is what releases it. Two misuses defeat
the design. (1) `std::mem::forget` on a guard leaks the pin forever — the
frame can never be evicted and `with_store`/`try_into_store` stay refused;
guards must always be dropped, never forgotten. (2) Holding a guard across
a `.checkpoint(`/`.flush(` call in the same function inverts the intended
scope: flush-class operations want the pool quiescent, and a still-live
guard from the same function is almost always an overlong scope (drop the
guard first, or narrow its binding). Both checks are source-order
heuristics over non-test code; a deliberate exception carries a
`// guard-scope-ok: ...` comment explaining why the scope is right.",
    },
    Rule {
        id: "wall-clock",
        summary: "no Instant::now()/SystemTime outside the clock abstraction",
        explain: "\
Trace replay and the fault/crash harnesses reproduce runs bit-for-bit only
if nothing in the measured path reads the wall clock: the disk model keeps
*simulated* time precisely so results are machine-independent. Instant::now
and SystemTime are banned outside the explicitly allowlisted measurement
binaries (repro/probe report real elapsed time alongside simulated time,
which is their job). If code needs time, it needs the simulated clock.",
    },
];

/// Look up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (see [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description of the finding.
    pub message: String,
    /// Whether an allowlist entry covered it.
    pub allowed: bool,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A source line after preprocessing.
#[derive(Debug, Default, Clone)]
struct Line {
    /// Code with comments removed and string/char contents blanked.
    code: String,
    /// Concatenated comment text of the line (line + block comments).
    comment: String,
    /// Inside a `#[cfg(test)]` item (module or function).
    in_test: bool,
}

/// A file preprocessed for linting.
struct PreparedFile {
    rel_path: PathBuf,
    lines: Vec<Line>,
}

/// Splits `source` into [`Line`]s: a small state machine over the raw text
/// that strips comments (tracking nesting of `/* */`), blanks the contents
/// of string/char literals (so tokens inside literals never match), and
/// tags `#[cfg(test)]` regions by tracking the brace depth of the item the
/// attribute applies to.
fn prepare(source: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut mode = Mode::Code;
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();

    // cfg(test) tracking: when a `#[cfg(test)]` attribute is pending, the
    // next `{` at depth 0 of the pending item opens a test region lasting
    // until its matching `}`.
    let mut depth: i64 = 0;
    let mut test_regions: Vec<i64> = Vec::new(); // depths at which a test region opened
    let mut pending_test_attr = false;

    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match mode {
            Mode::Code => match c {
                '/' if next == Some('/') => {
                    mode = Mode::LineComment;
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    mode = Mode::BlockComment(1);
                    i += 2;
                    continue;
                }
                '"' => {
                    // Raw string? Look back for r/br with hashes.
                    cur.code.push('"');
                    mode = Mode::Str;
                }
                'r' | 'b' => {
                    // Possible raw string start: r", r#", br", b"...
                    let mut j = i;
                    if chars[j] == 'b' && chars.get(j + 1) == Some(&'r') {
                        j += 1;
                    }
                    if chars[j] == 'r' {
                        let mut hashes = 0u32;
                        let mut k = j + 1;
                        while chars.get(k) == Some(&'#') {
                            hashes += 1;
                            k += 1;
                        }
                        if chars.get(k) == Some(&'"') {
                            for _ in i..=k {
                                cur.code.push('_');
                            }
                            mode = Mode::RawStr(hashes);
                            i = k + 1;
                            continue;
                        }
                    }
                    if c == 'b' && next == Some('"') {
                        cur.code.push_str("__");
                        mode = Mode::Str;
                        i += 2;
                        continue;
                    }
                    cur.code.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: a lifetime is '\'' followed
                    // by an identifier NOT closed by another quote nearby.
                    let is_char = match next {
                        Some('\\') => true,
                        Some(_) => {
                            // 'x' (closing quote right after one char) or
                            // unicode chars; lifetimes like 'a, 'static
                            // have no closing quote after the identifier.
                            let mut k = i + 1;
                            while k < chars.len() && (chars[k].is_alphanumeric() || chars[k] == '_')
                            {
                                k += 1;
                            }
                            chars.get(k) == Some(&'\'') && k > i + 1 || {
                                // single non-identifier char like ' '
                                chars.get(i + 2) == Some(&'\'')
                            }
                        }
                        None => false,
                    };
                    cur.code.push('\'');
                    if is_char {
                        mode = Mode::Char;
                    }
                }
                '{' => {
                    if pending_test_attr {
                        test_regions.push(depth);
                        pending_test_attr = false;
                    }
                    depth += 1;
                    cur.code.push('{');
                }
                '}' => {
                    depth -= 1;
                    if test_regions.last() == Some(&depth) {
                        test_regions.pop();
                    }
                    cur.code.push('}');
                }
                ';' => {
                    // An attribute pending on a `use`/item ended without a
                    // body at item depth: cancel (e.g. #[cfg(test)] use ...).
                    if pending_test_attr && cur.code.trim_start().starts_with("use ") {
                        pending_test_attr = false;
                    }
                    cur.code.push(';');
                }
                '\n' => {
                    cur.in_test = cur.in_test || !test_regions.is_empty();
                    lines.push(std::mem::take(&mut cur));
                }
                _ => cur.code.push(c),
            },
            Mode::LineComment => {
                if c == '\n' {
                    mode = Mode::Code;
                    cur.in_test = cur.in_test || !test_regions.is_empty();
                    lines.push(std::mem::take(&mut cur));
                } else {
                    cur.comment.push(c);
                }
            }
            Mode::BlockComment(n) => {
                if c == '*' && next == Some('/') {
                    mode = if n == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(n - 1)
                    };
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(n + 1);
                    i += 2;
                    continue;
                }
                if c == '\n' {
                    cur.in_test = cur.in_test || !test_regions.is_empty();
                    lines.push(std::mem::take(&mut cur));
                } else {
                    cur.comment.push(c);
                }
            }
            Mode::Str => match c {
                '\\' => {
                    cur.code.push('_');
                    if next.is_some() {
                        cur.code.push('_');
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    cur.code.push('"');
                    mode = Mode::Code;
                }
                '\n' => {
                    cur.in_test = cur.in_test || !test_regions.is_empty();
                    lines.push(std::mem::take(&mut cur));
                }
                _ => cur.code.push('_'),
            },
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut k = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(k) == Some(&'#') {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        for _ in 0..(1 + hashes) {
                            cur.code.push('_');
                        }
                        mode = Mode::Code;
                        i = k;
                        continue;
                    }
                }
                if c == '\n' {
                    cur.in_test = cur.in_test || !test_regions.is_empty();
                    lines.push(std::mem::take(&mut cur));
                } else {
                    cur.code.push('_');
                }
            }
            Mode::Char => match c {
                '\\' => {
                    cur.code.push('_');
                    if next.is_some() {
                        cur.code.push('_');
                        i += 2;
                        continue;
                    }
                }
                '\'' => {
                    cur.code.push('\'');
                    mode = Mode::Code;
                }
                _ => {
                    cur.code.push('_');
                    // Defensive: an unterminated char (really a lifetime we
                    // misjudged) ends at non-identifier chars.
                    if !c.is_alphanumeric() && c != '_' {
                        mode = Mode::Code;
                    }
                }
            },
        }
        // Detect `#[cfg(test)]` / `#[cfg(all(test, ...))]` once the line's
        // code has accumulated it (checked on the fly for exactness).
        if mode == Mode::Code
            && !pending_test_attr
            && (cur.code.ends_with("#[cfg(test)]")
                || cur.code.contains("#[cfg(test)]")
                || cur.code.contains("#[cfg(all(test"))
        {
            pending_test_attr = true;
        }
        // Sticky per-line flag: a line is test code if *any* of it sat
        // inside an open test region (checked per character, because the
        // region may close before the line's newline is reached).
        if !test_regions.is_empty() {
            cur.in_test = true;
        }
        i += 1;
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        cur.in_test = cur.in_test || !test_regions.is_empty();
        lines.push(cur);
    }
    lines
}

/// True when line `idx` — or the comment block directly above the statement
/// it belongs to — carries `marker` in a comment.
///
/// The upward walk skips continuation lines of the same multi-line
/// statement (code lines not ending in `;`, `{` or `}`), so a justification
/// above a wrapped method chain still counts; it stops at the previous
/// statement boundary, so justifications never leak across statements.
fn justified(lines: &[Line], idx: usize, marker: &str) -> bool {
    if lines[idx].comment.contains(marker) {
        return true;
    }
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let above = &lines[k];
        if above.comment.contains(marker) {
            return true;
        }
        let code = above.code.trim();
        if code.is_empty() {
            if above.comment.is_empty() {
                return false; // blank line ends the adjacent block
            }
            continue; // comment-only line: keep scanning upward
        }
        if code.ends_with(';') || code.ends_with('{') || code.ends_with('}') {
            return false; // previous statement boundary
        }
        // Continuation line of the same statement: keep walking.
    }
    false
}

/// Is `path` (workspace-relative, forward slashes) inside crates/core or
/// crates/storage sources?
fn in_hardened_crates(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/storage/src/")
}

/// Files that *are* the facade (or re-export it): exempt from sync-facade.
fn is_facade_file(path: &str) -> bool {
    path == "crates/storage/src/sync.rs" || path == "crates/core/src/sync.rs"
}

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

const WAL_TOKENS: &[&str] = &["wal_append(", "append_image("];
const STORE_TOKENS: &[&str] = &[
    "store_with_retry(",
    "io.store(",
    "store.write(",
    "inner.write(",
];

/// Runs every rule over one file. `rel_path` must use forward slashes.
fn check_file(rel_path: &Path, source: &str, out: &mut Vec<Violation>) {
    let path_str = rel_path.to_string_lossy().replace('\\', "/");
    let lines = prepare(source);
    let file = PreparedFile {
        rel_path: rel_path.to_path_buf(),
        lines,
    };

    rule_no_panic(&file, &path_str, out);
    rule_sync_facade(&file, &path_str, out);
    rule_relaxed_ok(&file, out);
    rule_wal_order(&file, out);
    rule_guard_scope(&file, out);
    rule_wall_clock(&file, out);
}

fn rule_no_panic(file: &PreparedFile, path_str: &str, out: &mut Vec<Violation>) {
    if !in_hardened_crates(path_str) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for tok in PANIC_TOKENS {
            if let Some(pos) = line.code.find(tok) {
                // `.expect(` cannot match `.expect_err(` (the token ends at
                // `(`), but the bang macros need an identifier-boundary
                // guard so e.g. `debug_assert!` does not contain `assert!`.
                if !tok.starts_with('.') && pos > 0 {
                    let before = line.code.as_bytes()[pos - 1];
                    if before.is_ascii_alphanumeric() || before == b'_' {
                        continue;
                    }
                }
                if justified(&file.lines, idx, "invariant:") {
                    continue;
                }
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    rule: "no-panic",
                    message: format!(
                        "`{tok}` in non-test code; return a typed error or document \
                         the invariant with a `// invariant:` comment",
                    ),
                    allowed: false,
                });
            }
        }
    }
}

fn rule_sync_facade(file: &PreparedFile, path_str: &str, out: &mut Vec<Violation>) {
    if is_facade_file(path_str) || path_str.starts_with("shims/") {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let mut hit: Option<String> = None;
        if code.contains("parking_lot") {
            hit = Some("parking_lot".to_string());
        } else if let Some(pos) = code.find("std::sync::") {
            let rest = &code[pos + "std::sync::".len()..];
            for banned in ["Mutex", "RwLock", "Condvar", "atomic", "Barrier", "Once"] {
                if rest.starts_with(banned) {
                    hit = Some(format!("std::sync::{banned}"));
                    break;
                }
            }
            // `use std::sync::{...}` groups: flag banned names inside.
            if hit.is_none() && rest.starts_with('{') {
                for banned in ["Mutex", "RwLock", "Condvar", "atomic", "Barrier", "Once"] {
                    let inside = &rest[1..rest.find('}').unwrap_or(rest.len())];
                    if inside
                        .split(',')
                        .any(|part| part.trim().starts_with(banned))
                    {
                        hit = Some(format!("std::sync::{{{banned}}}"));
                        break;
                    }
                }
            }
        }
        if let Some(what) = hit {
            out.push(Violation {
                file: file.rel_path.clone(),
                line: idx + 1,
                rule: "sync-facade",
                message: format!(
                    "direct `{what}` use; import locks/atomics from the sync facade \
                     (asb_storage::sync / asb_core::sync) so the model checker sees them",
                ),
                allowed: false,
            });
        }
    }
}

fn rule_relaxed_ok(file: &PreparedFile, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if line.code.contains("Ordering::Relaxed") && !justified(&file.lines, idx, "relaxed-ok:") {
            out.push(Violation {
                file: file.rel_path.clone(),
                line: idx + 1,
                rule: "relaxed-ok",
                message: "`Ordering::Relaxed` without a `// relaxed-ok:` justification \
                          comment on this line or the line above"
                    .to_string(),
                allowed: false,
            });
        }
    }
}

/// Approximate function-body extraction: a line whose code contains `fn `
/// and ends (possibly later) with `{` opens a body that closes when brace
/// depth returns to the opening level.
fn rule_wal_order(file: &PreparedFile, out: &mut Vec<Violation>) {
    let lines = &file.lines;
    let mut idx = 0;
    while idx < lines.len() {
        let line = &lines[idx];
        let is_fn = !line.in_test
            && (line.code.contains("fn ") && !line.code.trim_start().starts_with("//"));
        if !is_fn {
            idx += 1;
            continue;
        }
        // Find the opening brace of the body (same line or a following one,
        // skipping pure signature lines); bail out on `;` (trait method).
        let mut depth: i64 = 0;
        let mut body_start = None;
        let mut j = idx;
        'find: while j < lines.len() && j < idx + 8 {
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        if depth == 1 {
                            body_start = Some(j);
                            break 'find;
                        }
                    }
                    ';' if depth == 0 => break 'find,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(start) = body_start else {
            idx += 1;
            continue;
        };
        // Walk the body, recording first WAL and first store call.
        let mut first_wal: Option<usize> = None;
        let mut first_store: Option<usize> = None;
        let mut d: i64 = 0;
        let mut k = start;
        'body: while k < lines.len() {
            let code = &lines[k].code;
            for tok in WAL_TOKENS {
                if code.contains(tok) && first_wal.is_none() {
                    first_wal = Some(k);
                }
            }
            for tok in STORE_TOKENS {
                if code.contains(tok) && first_store.is_none() {
                    first_store = Some(k);
                }
            }
            for c in code.chars() {
                match c {
                    '{' => d += 1,
                    '}' => {
                        d -= 1;
                        if d == 0 {
                            break 'body;
                        }
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        if let (Some(w), Some(s)) = (first_wal, first_store) {
            if s < w && !lines[idx].in_test && !justified(lines, s, "wal-order-ok:") {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: s + 1,
                    rule: "wal-order",
                    message: format!(
                        "store write at line {} precedes the WAL append at line {} in the \
                         same function; write-ahead logging requires the append first",
                        s + 1,
                        w + 1
                    ),
                    allowed: false,
                });
            }
        }
        idx = k.max(idx) + 1;
    }
}

/// Guard-scope hygiene, two checks over non-test code.
///
/// *Forget check* (per line): `mem::forget(` whose argument text mentions a
/// guard leaks the pin forever and is flagged wherever it appears.
///
/// *Hold-across check* (per function body, same extraction as
/// [`rule_wal_order`]): a `let` binding a guard (`.fetch(`/`.fetch_mut(`)
/// stays "live" until a `drop(` call or until brace depth falls back to the
/// binding's level; a `.checkpoint(`/`.flush(` reached while a binding is
/// live is flagged. Like wal-order this is a source-order heuristic — the
/// interleave suite checks the runtime property; this catches the obvious
/// overlong scope in a refactor.
fn rule_guard_scope(file: &PreparedFile, out: &mut Vec<Violation>) {
    let lines = &file.lines;

    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if let Some(pos) = line.code.find("mem::forget(") {
            let arg = line.code[pos..].to_ascii_lowercase();
            if arg.contains("guard") && !justified(lines, idx, "guard-scope-ok:") {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    rule: "guard-scope",
                    message: "`mem::forget` of a page guard leaks its frame pin forever; \
                              let the guard drop (or justify with `// guard-scope-ok:`)"
                        .to_string(),
                    allowed: false,
                });
            }
        }
    }

    let mut idx = 0;
    while idx < lines.len() {
        let line = &lines[idx];
        let is_fn = !line.in_test
            && (line.code.contains("fn ") && !line.code.trim_start().starts_with("//"));
        if !is_fn {
            idx += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut body_start = None;
        let mut j = idx;
        'find: while j < lines.len() && j < idx + 8 {
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        if depth == 1 {
                            body_start = Some(j);
                            break 'find;
                        }
                    }
                    ';' if depth == 0 => break 'find,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(start) = body_start else {
            idx += 1;
            continue;
        };
        // Walk the body: guard bindings enter `live` with the depth they
        // were bound at and leave on `drop(` or when their scope closes.
        let mut live: Vec<(usize, i64)> = Vec::new();
        let mut d: i64 = 0;
        let mut k = start;
        'body: while k < lines.len() {
            let code = &lines[k].code;
            let binds_guard =
                code.contains("let ") && (code.contains(".fetch(") || code.contains(".fetch_mut("));
            if code.contains("drop(") {
                live.clear();
            } else if !live.is_empty()
                && (code.contains(".checkpoint(") || code.contains(".flush("))
                && !lines[idx].in_test
                && !justified(lines, k, "guard-scope-ok:")
            {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: k + 1,
                    rule: "guard-scope",
                    message: format!(
                        "checkpoint/flush with the guard bound at line {} still live; \
                         drop the guard first or narrow its scope",
                        live[0].0 + 1
                    ),
                    allowed: false,
                });
                live.clear(); // one finding per overlong scope
            }
            for c in code.chars() {
                match c {
                    '{' => d += 1,
                    '}' => {
                        d -= 1;
                        if d == 0 {
                            break 'body;
                        }
                        live.retain(|&(_, bd)| bd <= d);
                    }
                    _ => {}
                }
            }
            if binds_guard {
                live.push((k, d));
            }
            k += 1;
        }
        idx = k.max(idx) + 1;
    }
}

fn rule_wall_clock(file: &PreparedFile, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for tok in ["Instant::now", "SystemTime"] {
            if line.code.contains(tok) {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    rule: "wall-clock",
                    message: format!(
                        "`{tok}` outside the clock abstraction breaks deterministic \
                         replay; use simulated time (or allowlist a measurement binary)",
                    ),
                    allowed: false,
                });
            }
        }
    }
}

/// One allowlist entry: `rule path-prefix reason...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry silences.
    pub rule: String,
    /// Workspace-relative path prefix the entry covers.
    pub path_prefix: String,
    /// Why the violation is acceptable (required).
    pub reason: String,
}

/// Parses `allowlist.txt`: one entry per line, `#` comments, blank lines
/// ignored. Returns an error message for a malformed line.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let (Some(rule_id), Some(path), Some(reason)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "allowlist line {}: expected `rule path reason...`, got `{raw}`",
                no + 1
            ));
        };
        if rule(rule_id).is_none() {
            return Err(format!(
                "allowlist line {}: unknown rule `{rule_id}`",
                no + 1
            ));
        }
        entries.push(AllowEntry {
            rule: rule_id.to_string(),
            path_prefix: path.to_string(),
            reason: reason.trim().to_string(),
        });
    }
    Ok(entries)
}

/// Marks violations covered by the allowlist.
pub fn apply_allowlist(violations: &mut [Violation], allow: &[AllowEntry]) {
    for v in violations.iter_mut() {
        let path = v.file.to_string_lossy().replace('\\', "/");
        if allow
            .iter()
            .any(|a| a.rule == v.rule && path.starts_with(&a.path_prefix))
        {
            v.allowed = true;
        }
    }
}

/// Which workspace files the lint pass scans: Rust sources under `crates/`,
/// the root `src/`, `examples/` and `tests/` — never `shims/` (stand-ins
/// for external crates play by external rules) or `target/`.
pub fn scan_roots() -> &'static [&'static str] {
    &["crates", "src", "examples", "tests"]
}

/// Recursively collects `.rs` files under `root/<scan roots>`, returning
/// workspace-relative paths in sorted (deterministic) order.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        let mut entries: Vec<_> = std::fs::read_dir(dir)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                walk(&path, out)?;
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    for sub in scan_roots() {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    for p in &mut out {
        if let Ok(rel) = p.strip_prefix(root) {
            *p = rel.to_path_buf();
        }
    }
    out.sort();
    Ok(out)
}

/// Lints the workspace at `root`. Returns all violations (allowed ones
/// marked), or an IO/parse error message.
pub fn check_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    let allow_path = root.join("crates/analyze/allowlist.txt");
    let allow = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
        parse_allowlist(&text)?
    } else {
        Vec::new()
    };
    let files = collect_files(root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let mut violations = Vec::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("reading {}: {e}", rel.display()))?;
        check_file(&rel, &source, &mut violations);
    }
    apply_allowlist(&mut violations, &allow);
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        check_file(Path::new(path), src, &mut out);
        out
    }

    #[test]
    fn no_panic_flags_unwrap_in_hardened_crates_only() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint("crates/core/src/a.rs", src).len(), 1);
        assert_eq!(lint("crates/storage/src/a.rs", src).len(), 1);
        assert_eq!(lint("crates/exp/src/a.rs", src).len(), 0);
    }

    #[test]
    fn no_panic_accepts_invariant_comments() {
        let same = "fn f() { x.expect(\"y\"); // invariant: always present\n}\n";
        assert!(lint("crates/core/src/a.rs", same).is_empty());
        let above = "fn f() {\n // invariant: seeded in new()\n x.expect(\"y\");\n}\n";
        assert!(lint("crates/core/src/a.rs", above).is_empty());
    }

    #[test]
    fn no_panic_skips_test_code_and_strings_and_expect_err() {
        let test_mod = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); }\n}\n";
        assert!(lint("crates/core/src/a.rs", test_mod).is_empty());
        let in_string = "fn f() { let s = \"don't .unwrap() here\"; }\n";
        assert!(lint("crates/core/src/a.rs", in_string).is_empty());
        let err_probe = "fn f() { let e = r.expect_err(\"must fail\"); let _ = e; }\n";
        assert!(
            lint("crates/core/src/a.rs", err_probe).is_empty(),
            "expect_err is an error-path probe, not a panic on the happy path"
        );
    }

    #[test]
    fn sync_facade_flags_direct_primitives() {
        let pl = "use parking_lot::Mutex;\n";
        assert_eq!(lint("crates/core/src/a.rs", pl).len(), 1);
        let stdm = "use std::sync::Mutex;\n";
        assert_eq!(lint("crates/exp/src/a.rs", stdm).len(), 1);
        let grouped = "use std::sync::{Arc, Mutex};\n";
        assert_eq!(lint("crates/exp/src/a.rs", grouped).len(), 1);
        let arc_only = "use std::sync::Arc;\n";
        assert!(lint("crates/exp/src/a.rs", arc_only).is_empty());
        let atomics = "use std::sync::atomic::{AtomicU64, Ordering};\n";
        assert_eq!(lint("crates/exp/src/a.rs", atomics).len(), 1);
    }

    #[test]
    fn sync_facade_exempts_the_facade_and_shims() {
        let src = "pub use parking_lot::{Mutex, RwLock};\n";
        assert!(lint("crates/storage/src/sync.rs", src).is_empty());
        assert!(lint("shims/parking_lot/src/lib.rs", src).is_empty());
    }

    #[test]
    fn relaxed_requires_justification() {
        let bare = "fn f(a: &A) { a.n.load(Ordering::Relaxed); }\n";
        assert_eq!(lint("crates/storage/src/a.rs", bare).len(), 1);
        let ok = "fn f(a: &A) {\n // relaxed-ok: lone counter\n a.n.load(Ordering::Relaxed); }\n";
        assert!(lint("crates/storage/src/a.rs", ok).is_empty());
    }

    #[test]
    fn wal_order_flags_store_before_append() {
        let bad = "fn w(&mut self) -> R {\n io.store(&p)?;\n self.wal_append(&p)?;\n Ok(())\n}\n";
        let v = lint("crates/core/src/m.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "wal-order");
        let good = "fn w(&mut self) -> R {\n self.wal_append(&p)?;\n io.store(&p)?;\n Ok(())\n}\n";
        assert!(lint("crates/core/src/m.rs", good).is_empty());
        let only_store = "fn w(&mut self) -> R { io.store(&p) }\n";
        assert!(lint("crates/core/src/m.rs", only_store).is_empty());
    }

    #[test]
    fn guard_scope_flags_forgotten_guards() {
        let bad = "fn f(b: &B) { let guard = b.fetch(id, ctx)?; std::mem::forget(guard); }\n";
        let v = lint("crates/rtree/src/a.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "guard-scope");
        let ok = "fn f(x: Widget) { std::mem::forget(x); }\n";
        assert!(
            lint("crates/rtree/src/a.rs", ok).is_empty(),
            "forgetting a non-guard is someone else's problem"
        );
        let justified =
            "fn f(b: &B) {\n // guard-scope-ok: leak test fixture\n std::mem::forget(guard);\n}\n";
        assert!(lint("crates/rtree/src/a.rs", justified).is_empty());
    }

    #[test]
    fn guard_scope_flags_guards_held_across_flush() {
        let bad = "fn f(p: &P) -> R {\n let g = p.fetch(id, ctx)?;\n p.flush()?;\n Ok(())\n}\n";
        let v = lint("crates/exp/src/a.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "guard-scope");
        assert_eq!(v[0].line, 3);
        let dropped =
            "fn f(p: &P) -> R {\n let g = p.fetch(id, ctx)?;\n drop(g);\n p.checkpoint()?;\n Ok(())\n}\n";
        assert!(lint("crates/exp/src/a.rs", dropped).is_empty());
        let scoped =
            "fn f(p: &P) -> R {\n {\n let g = p.fetch(id, ctx)?;\n }\n p.flush()?;\n Ok(())\n}\n";
        assert!(
            lint("crates/exp/src/a.rs", scoped).is_empty(),
            "a guard whose scope closed is no longer held"
        );
        let in_test =
            "#[cfg(test)]\nmod t {\n fn f(p: &P) { let g = p.fetch(id, ctx); p.flush(); }\n}\n";
        assert!(lint("crates/exp/src/a.rs", in_test).is_empty());
    }

    #[test]
    fn wall_clock_flags_instant_and_systemtime() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(lint("crates/exp/src/a.rs", src).len(), 1);
        let st = "fn f() { let t = std::time::SystemTime::now(); }\n";
        assert_eq!(lint("examples/x.rs", st).len(), 1);
        let sim = "fn f() { let t = clock.simulated_ms(); }\n";
        assert!(lint("crates/exp/src/a.rs", sim).is_empty());
    }

    #[test]
    fn allowlist_parses_and_applies() {
        let text = "# comment\nwall-clock crates/exp/src/bin/repro.rs reports real time\n";
        let allow = parse_allowlist(text).expect("parse");
        assert_eq!(allow.len(), 1);
        let mut v = vec![Violation {
            file: PathBuf::from("crates/exp/src/bin/repro.rs"),
            line: 3,
            rule: "wall-clock",
            message: String::new(),
            allowed: false,
        }];
        apply_allowlist(&mut v, &allow);
        assert!(v[0].allowed);
        assert!(parse_allowlist("bogus-rule x y\n").is_err());
        assert!(parse_allowlist("no-panic onlytwo\n").is_err());
    }

    #[test]
    fn block_comments_and_raw_strings_are_stripped() {
        let src = "fn f() { /* .unwrap() in comment */ let s = r#\"panic!\"#; }\n";
        assert!(lint("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x.unwrap() }\n";
        // The unwrap must still be seen even with lifetimes around.
        assert_eq!(lint("crates/core/src/a.rs", src).len(), 1);
    }

    #[test]
    fn cfg_test_region_ends_with_its_brace() {
        let src = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); } }\nfn g() { y.unwrap(); }\n";
        let v = lint("crates/core/src/a.rs", src);
        assert_eq!(v.len(), 1, "only the post-module unwrap is flagged");
        assert_eq!(v[0].line, 3);
    }
}
