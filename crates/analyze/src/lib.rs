//! `asb-analyze` — workspace invariant lints.
//!
//! A dependency-free, source-level lint pass enforcing repo-specific rules
//! that clippy cannot express (see [`RULES`] for the catalog). Sources are
//! tokenized by a small real lexer ([`lexer`]) — raw strings, nested block
//! comments and lifetimes are resolved once, correctly — and every rule
//! then works over either the per-line view or the token stream, whichever
//! fits. The design stays dependency-free: the rules target *patterns that
//! should not appear at all* (outside justified spots) rather than deep
//! syntactic structure, so no type information is needed.
//!
//! ## Anatomy of a rule
//!
//! Each rule implements one check over a [`PreparedFile`]: the file split
//! into [`Line`]s, each carrying the code text with string/char literals
//! blanked and comments removed, the comment text itself (rules look for
//! justification markers there), and whether the line sits inside a
//! `#[cfg(test)]` region — plus the significant token stream ([`Tok`])
//! for the structural rules (lock-order, guard-send, counter-pair).
//! Violations carry `file:line` and a message; the driver subtracts the
//! allowlist (`crates/analyze/allowlist.txt`) and the remainder is fatal.
//!
//! Adding a rule: add a variant to [`RULES`], implement its check in
//! [`check_file`], document it in `DESIGN.md` §11/§16, and give it an
//! `explain` entry — the `explain` text is the contract reviewers hold the
//! rule to.

pub mod lexer;

use std::fmt;
use std::path::{Path, PathBuf};

use lexer::TokenKind;

/// Identifier, summary and rationale of one lint rule.
pub struct Rule {
    /// Stable id used in diagnostics and the allowlist (e.g. `no-panic`).
    pub id: &'static str,
    /// One-line summary shown by `list`.
    pub summary: &'static str,
    /// Full rationale shown by `explain`.
    pub explain: &'static str,
}

/// The rule catalog.
pub const RULES: &[Rule] = &[
    Rule {
        id: "no-panic",
        summary: "no unwrap()/expect()/panic! in asb-core and asb-storage non-test code",
        explain: "\
Buffer and storage code sits under every index and experiment; a panic
there takes down the whole process where a typed StorageError would have
been retried, surfaced, or measured. Non-test code in crates/core and
crates/storage must return typed errors instead of calling .unwrap(),
.expect(), panic!, unreachable!, todo! or unimplemented!.

A genuinely unreachable expect is allowed when the invariant that makes it
unreachable is written down: put a `// invariant: ...` comment on the same
line or the line above, stating *why* the failure cannot happen (not just
that it doesn't). assert!/debug_assert! are out of scope: they check caller
contracts, and turning them into Results would hide caller bugs.",
    },
    Rule {
        id: "sync-facade",
        summary: "no direct parking_lot/std::sync primitive use outside the sync facade",
        explain: "\
All locks and atomics must come from the sync facade (asb_storage::sync,
re-exported as asb_core::sync). The facade compiles to the parking_lot shim
normally and to the deterministic scheduler under --cfg asb_schedule; a
Mutex constructed directly from parking_lot or std::sync is invisible to
the model checker, so the interleaving suite would silently not explore
it. std::sync::Arc, mpsc and PoisonError are fine (they are not schedule
points); the facade itself and shims/ are exempt by construction.",
    },
    Rule {
        id: "relaxed-ok",
        summary: "every Ordering::Relaxed needs a `// relaxed-ok:` justification",
        explain: "\
Relaxed atomics are correct only when the value is independent of all other
memory (a lone counter or flag) — and that argument lives in the head of
whoever wrote it unless it is written down. Each use of Ordering::Relaxed
must carry a `// relaxed-ok: ...` comment on the same line or the line
above stating why no ordering is needed. If the justification feels hard
to write, the ordering is probably wrong: use Acquire/Release/SeqCst.",
    },
    Rule {
        id: "wal-order",
        summary: "WAL append must precede store write within a function that does both",
        explain: "\
The crash-consistency contract is write-ahead logging: a page image reaches
the log before the store write that makes it durable, so a crash between
the two is always recoverable. Within any single non-test function body
that both appends to the WAL (wal_append/append_image) and writes the
store (store_with_retry/io.store/store.write), the first WAL call must
appear before the first store call in source order. This is a source-order
heuristic, not a data-flow proof — the interleaving suite's WalOrderProbe
checks the runtime property; this rule catches the obvious regression of
reordering the calls in a refactor.",
    },
    Rule {
        id: "guard-scope",
        summary: "page guards must not be forgotten or held across checkpoint/flush",
        explain: "\
PageReadGuard/PageWriteGuard pin a frame until dropped: the pin is what
makes eviction safe, and the drop is what releases it. Two misuses defeat
the design. (1) `std::mem::forget` on a guard leaks the pin forever — the
frame can never be evicted and `with_store`/`try_into_store` stay refused;
guards must always be dropped, never forgotten. (2) Holding a guard across
a `.checkpoint(`/`.flush(` call in the same function inverts the intended
scope: flush-class operations want the pool quiescent, and a still-live
guard from the same function is almost always an overlong scope (drop the
guard first, or narrow its binding). Both checks are source-order
heuristics over non-test code; a deliberate exception carries a
`// guard-scope-ok: ...` comment explaining why the scope is right.",
    },
    Rule {
        id: "wall-clock",
        summary: "no Instant::now()/SystemTime outside the clock abstraction",
        explain: "\
Trace replay and the fault/crash harnesses reproduce runs bit-for-bit only
if nothing in the measured path reads the wall clock: the disk model keeps
*simulated* time precisely so results are machine-independent. Instant::now
and SystemTime are banned outside the explicitly allowlisted measurement
binaries (repro/probe report real elapsed time alongside simulated time,
which is their job). If code needs time, it needs the simulated clock.",
    },
    Rule {
        id: "lock-order",
        summary: "shard locks acquire first; store/WAL/flight latches below; shard loops ascend",
        explain: "\
The pool's deadlock-freedom argument is a total lock order: shard mutex
above store lock, WAL and single-flight latches below shard, and all-shard
acquisition strictly in ascending index order. Within any non-test function
body in crates/core or crates/storage, a shard-lock acquisition
(`*shard*.lock()`) may not appear after a store-lock (`*store*.read()` /
`.write()`), WAL (`*wal*.lock()`) or flight-latch (`*flight*/*latch*
.lock()`, `scheduler.run(`) acquisition in the same body; and iterating
shards with `.rev()` before locking them inverts the ascending order. This
is a source-order heuristic over receiver names — the dynamic prong
(asb_schedule::lock_graph()) checks the runtime property across >=1000
schedules per scenario; this rule catches the obvious inversion in review.
A two-phase pattern (store lock released as a temporary before the shard
lock is taken) is legal: justify with `// lock-order-ok: ...` saying why
the earlier acquisition is not held.",
    },
    Rule {
        id: "guard-send",
        summary: "no PinToken/page guard captured by thread::spawn or stored in a struct",
        explain: "\
PinToken and the page guards (PageReadGuard/PageWriteGuard) are scoped
capabilities: they pin a frame and are meant to die in the stack frame that
made them. Capturing one in a `thread::spawn` closure moves the pin to a
thread whose lifetime nothing bounds, and storing one in a struct field
lets it cross the sync facade and outlive the pool's reasoning about
eviction. Both are flagged in non-test code: a spawn whose closure mentions
a guard binding (or a guard type) from the enclosing function, and any
struct/enum whose fields name a guard type (the guard definitions
themselves, in crates/core/src/guard.rs, are exempt by construction). A
deliberate exception carries `// guard-send-ok: ...` explaining what bounds
the guard's lifetime.",
    },
    Rule {
        id: "counter-pair",
        summary: "paired BufferStats counters increment together, in one lock scope",
        explain: "\
Some stats counters are only meaningful as pairs: evictions with
failed_evictions (crates/core/src/manager.rs) and led with joined
(crates/storage/src/scheduler.rs). Probes assert relations across a pair,
so incrementing one member from a function that never touches its sibling
— or from outside the pair's home file, where the lock scope that makes the
pair atomic does not exist — silently skews every experiment that reads
them. Each increment of a paired counter must happen in the pair's home
file, inside a function body that also increments (or consciously accounts
for) the sibling; anything else needs a `// counter-ok: ...` marker saying
why the lone increment keeps the pair's invariant.",
    },
];

/// Look up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (see [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description of the finding.
    pub message: String,
    /// Whether an allowlist entry covered it.
    pub allowed: bool,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A source line after preprocessing.
#[derive(Debug, Default, Clone)]
struct Line {
    /// Code with comments removed and string/char contents blanked.
    code: String,
    /// Concatenated comment text of the line (line + block comments).
    comment: String,
    /// Inside a `#[cfg(test)]` item (module or function).
    in_test: bool,
}

/// A significant token (whitespace and comments dropped) with the 0-based
/// index of the [`Line`] it starts on. The structural rules walk these.
#[derive(Debug, Clone)]
struct Tok {
    kind: TokenKind,
    text: String,
    line: usize,
}

/// A file preprocessed for linting.
struct PreparedFile {
    rel_path: PathBuf,
    lines: Vec<Line>,
    toks: Vec<Tok>,
}

/// Lexes `source` once and derives both rule views from the token stream:
/// the per-[`Line`] view (comments separated out, string/char literal
/// contents blanked so tokens inside literals never match) and the
/// significant-token stream. `#[cfg(test)]` regions are then marked by
/// [`mark_test_regions`].
fn prepare(source: &str) -> (Vec<Line>, Vec<Tok>) {
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut toks: Vec<Tok> = Vec::new();

    for t in lexer::lex(source) {
        if !matches!(
            t.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        ) {
            toks.push(Tok {
                kind: t.kind,
                text: t.text.to_string(),
                line: lines.len(),
            });
        }
        match t.kind {
            TokenKind::Whitespace => {
                for c in t.text.chars() {
                    if c == '\n' {
                        lines.push(std::mem::take(&mut cur));
                    } else {
                        cur.code.push(c);
                    }
                }
            }
            TokenKind::LineComment => cur.comment.push_str(&t.text[2..]),
            TokenKind::BlockComment => {
                let inner = t.text[2..].strip_suffix("*/").unwrap_or(&t.text[2..]);
                for c in inner.chars() {
                    if c == '\n' {
                        lines.push(std::mem::take(&mut cur));
                    } else {
                        cur.comment.push(c);
                    }
                }
            }
            TokenKind::StrLit | TokenKind::RawStrLit | TokenKind::CharLit => {
                // Keep the delimiting quotes (so the line still *looks*
                // like it holds a literal) and blank everything else.
                let n = t.text.chars().count();
                for (k, c) in t.text.chars().enumerate() {
                    if c == '\n' {
                        lines.push(std::mem::take(&mut cur));
                    } else if (c == '"' || c == '\'') && (k == 0 || k == n - 1) {
                        cur.code.push(c);
                    } else {
                        cur.code.push('_');
                    }
                }
            }
            _ => cur.code.push_str(t.text),
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    mark_test_regions(&mut lines);
    (lines, toks)
}

/// Tags lines inside `#[cfg(test)]` items: when the attribute is pending,
/// the next `{` opens a test region at the current brace depth, lasting
/// until its matching `}`. A pending attribute on a `use` item (no body)
/// cancels at the `;`. A line is test code if *any* of it sat inside an
/// open region — so the opening and closing brace lines both count.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut regions: Vec<i64> = Vec::new(); // depths at which a region opened
    let mut pending = false;
    for line in lines.iter_mut() {
        let mut in_region = !regions.is_empty();
        let mut acc = String::new();
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending {
                        regions.push(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                }
                ';' if pending && acc.trim_start().starts_with("use ") => {
                    pending = false;
                }
                _ => {}
            }
            acc.push(c);
            if !pending && (acc.ends_with("#[cfg(test)]") || acc.ends_with("#[cfg(all(test")) {
                pending = true;
            }
            if !regions.is_empty() {
                in_region = true;
            }
        }
        line.in_test = line.in_test || in_region;
    }
}

/// True when line `idx` — or the comment block directly above the statement
/// it belongs to — carries `marker` in a comment.
///
/// The upward walk skips continuation lines of the same multi-line
/// statement (code lines not ending in `;`, `{` or `}`), so a justification
/// above a wrapped method chain still counts; it stops at the previous
/// statement boundary, so justifications never leak across statements.
fn justified(lines: &[Line], idx: usize, marker: &str) -> bool {
    if lines[idx].comment.contains(marker) {
        return true;
    }
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let above = &lines[k];
        if above.comment.contains(marker) {
            return true;
        }
        let code = above.code.trim();
        if code.is_empty() {
            if above.comment.is_empty() {
                return false; // blank line ends the adjacent block
            }
            continue; // comment-only line: keep scanning upward
        }
        if code.ends_with(';') || code.ends_with('{') || code.ends_with('}') {
            return false; // previous statement boundary
        }
        // Continuation line of the same statement: keep walking.
    }
    false
}

/// Is `path` (workspace-relative, forward slashes) inside crates/core or
/// crates/storage sources?
fn in_hardened_crates(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/storage/src/")
}

/// Files that *are* the facade (or re-export it): exempt from sync-facade.
fn is_facade_file(path: &str) -> bool {
    path == "crates/storage/src/sync.rs" || path == "crates/core/src/sync.rs"
}

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

const WAL_TOKENS: &[&str] = &["wal_append(", "append_image("];
const STORE_TOKENS: &[&str] = &[
    "store_with_retry(",
    "io.store(",
    "store.write(",
    "inner.write(",
];

/// Runs every rule over one file. `rel_path` must use forward slashes.
fn check_file(rel_path: &Path, source: &str, out: &mut Vec<Violation>) {
    let path_str = rel_path.to_string_lossy().replace('\\', "/");
    let (lines, toks) = prepare(source);
    let file = PreparedFile {
        rel_path: rel_path.to_path_buf(),
        lines,
        toks,
    };

    rule_no_panic(&file, &path_str, out);
    rule_sync_facade(&file, &path_str, out);
    rule_relaxed_ok(&file, out);
    rule_wal_order(&file, out);
    rule_guard_scope(&file, out);
    rule_wall_clock(&file, out);
    rule_lock_order(&file, &path_str, out);
    rule_guard_send(&file, &path_str, out);
    rule_counter_pair(&file, &path_str, out);
}

fn rule_no_panic(file: &PreparedFile, path_str: &str, out: &mut Vec<Violation>) {
    if !in_hardened_crates(path_str) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for tok in PANIC_TOKENS {
            if let Some(pos) = line.code.find(tok) {
                // `.expect(` cannot match `.expect_err(` (the token ends at
                // `(`), but the bang macros need an identifier-boundary
                // guard so e.g. `debug_assert!` does not contain `assert!`.
                if !tok.starts_with('.') && pos > 0 {
                    let before = line.code.as_bytes()[pos - 1];
                    if before.is_ascii_alphanumeric() || before == b'_' {
                        continue;
                    }
                }
                if justified(&file.lines, idx, "invariant:") {
                    continue;
                }
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    rule: "no-panic",
                    message: format!(
                        "`{tok}` in non-test code; return a typed error or document \
                         the invariant with a `// invariant:` comment",
                    ),
                    allowed: false,
                });
            }
        }
    }
}

fn rule_sync_facade(file: &PreparedFile, path_str: &str, out: &mut Vec<Violation>) {
    if is_facade_file(path_str) || path_str.starts_with("shims/") {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let mut hit: Option<String> = None;
        if code.contains("parking_lot") {
            hit = Some("parking_lot".to_string());
        } else if let Some(pos) = code.find("std::sync::") {
            let rest = &code[pos + "std::sync::".len()..];
            for banned in ["Mutex", "RwLock", "Condvar", "atomic", "Barrier", "Once"] {
                if rest.starts_with(banned) {
                    hit = Some(format!("std::sync::{banned}"));
                    break;
                }
            }
            // `use std::sync::{...}` groups: flag banned names inside.
            if hit.is_none() && rest.starts_with('{') {
                for banned in ["Mutex", "RwLock", "Condvar", "atomic", "Barrier", "Once"] {
                    let inside = &rest[1..rest.find('}').unwrap_or(rest.len())];
                    if inside
                        .split(',')
                        .any(|part| part.trim().starts_with(banned))
                    {
                        hit = Some(format!("std::sync::{{{banned}}}"));
                        break;
                    }
                }
            }
        }
        if let Some(what) = hit {
            out.push(Violation {
                file: file.rel_path.clone(),
                line: idx + 1,
                rule: "sync-facade",
                message: format!(
                    "direct `{what}` use; import locks/atomics from the sync facade \
                     (asb_storage::sync / asb_core::sync) so the model checker sees them",
                ),
                allowed: false,
            });
        }
    }
}

fn rule_relaxed_ok(file: &PreparedFile, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if line.code.contains("Ordering::Relaxed") && !justified(&file.lines, idx, "relaxed-ok:") {
            out.push(Violation {
                file: file.rel_path.clone(),
                line: idx + 1,
                rule: "relaxed-ok",
                message: "`Ordering::Relaxed` without a `// relaxed-ok:` justification \
                          comment on this line or the line above"
                    .to_string(),
                allowed: false,
            });
        }
    }
}

/// Approximate function-body extraction: a line whose code contains `fn `
/// and ends (possibly later) with `{` opens a body that closes when brace
/// depth returns to the opening level.
fn rule_wal_order(file: &PreparedFile, out: &mut Vec<Violation>) {
    let lines = &file.lines;
    let mut idx = 0;
    while idx < lines.len() {
        let line = &lines[idx];
        let is_fn = !line.in_test
            && (line.code.contains("fn ") && !line.code.trim_start().starts_with("//"));
        if !is_fn {
            idx += 1;
            continue;
        }
        // Find the opening brace of the body (same line or a following one,
        // skipping pure signature lines); bail out on `;` (trait method).
        let mut depth: i64 = 0;
        let mut body_start = None;
        let mut j = idx;
        'find: while j < lines.len() && j < idx + 8 {
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        if depth == 1 {
                            body_start = Some(j);
                            break 'find;
                        }
                    }
                    ';' if depth == 0 => break 'find,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(start) = body_start else {
            idx += 1;
            continue;
        };
        // Walk the body, recording first WAL and first store call.
        let mut first_wal: Option<usize> = None;
        let mut first_store: Option<usize> = None;
        let mut d: i64 = 0;
        let mut k = start;
        'body: while k < lines.len() {
            let code = &lines[k].code;
            for tok in WAL_TOKENS {
                if code.contains(tok) && first_wal.is_none() {
                    first_wal = Some(k);
                }
            }
            for tok in STORE_TOKENS {
                if code.contains(tok) && first_store.is_none() {
                    first_store = Some(k);
                }
            }
            for c in code.chars() {
                match c {
                    '{' => d += 1,
                    '}' => {
                        d -= 1;
                        if d == 0 {
                            break 'body;
                        }
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        if let (Some(w), Some(s)) = (first_wal, first_store) {
            if s < w && !lines[idx].in_test && !justified(lines, s, "wal-order-ok:") {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: s + 1,
                    rule: "wal-order",
                    message: format!(
                        "store write at line {} precedes the WAL append at line {} in the \
                         same function; write-ahead logging requires the append first",
                        s + 1,
                        w + 1
                    ),
                    allowed: false,
                });
            }
        }
        idx = k.max(idx) + 1;
    }
}

/// Guard-scope hygiene, two checks over non-test code.
///
/// *Forget check* (per line): `mem::forget(` whose argument text mentions a
/// guard leaks the pin forever and is flagged wherever it appears.
///
/// *Hold-across check* (per function body, same extraction as
/// [`rule_wal_order`]): a `let` binding a guard (`.fetch(`/`.fetch_mut(`)
/// stays "live" until a `drop(` call or until brace depth falls back to the
/// binding's level; a `.checkpoint(`/`.flush(` reached while a binding is
/// live is flagged. Like wal-order this is a source-order heuristic — the
/// interleave suite checks the runtime property; this catches the obvious
/// overlong scope in a refactor.
fn rule_guard_scope(file: &PreparedFile, out: &mut Vec<Violation>) {
    let lines = &file.lines;

    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if let Some(pos) = line.code.find("mem::forget(") {
            let arg = line.code[pos..].to_ascii_lowercase();
            if arg.contains("guard") && !justified(lines, idx, "guard-scope-ok:") {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    rule: "guard-scope",
                    message: "`mem::forget` of a page guard leaks its frame pin forever; \
                              let the guard drop (or justify with `// guard-scope-ok:`)"
                        .to_string(),
                    allowed: false,
                });
            }
        }
    }

    let mut idx = 0;
    while idx < lines.len() {
        let line = &lines[idx];
        let is_fn = !line.in_test
            && (line.code.contains("fn ") && !line.code.trim_start().starts_with("//"));
        if !is_fn {
            idx += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut body_start = None;
        let mut j = idx;
        'find: while j < lines.len() && j < idx + 8 {
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        if depth == 1 {
                            body_start = Some(j);
                            break 'find;
                        }
                    }
                    ';' if depth == 0 => break 'find,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(start) = body_start else {
            idx += 1;
            continue;
        };
        // Walk the body: guard bindings enter `live` with the depth they
        // were bound at and leave on `drop(` or when their scope closes.
        let mut live: Vec<(usize, i64)> = Vec::new();
        let mut d: i64 = 0;
        let mut k = start;
        'body: while k < lines.len() {
            let code = &lines[k].code;
            let binds_guard =
                code.contains("let ") && (code.contains(".fetch(") || code.contains(".fetch_mut("));
            if code.contains("drop(") {
                live.clear();
            } else if !live.is_empty()
                && (code.contains(".checkpoint(") || code.contains(".flush("))
                && !lines[idx].in_test
                && !justified(lines, k, "guard-scope-ok:")
            {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: k + 1,
                    rule: "guard-scope",
                    message: format!(
                        "checkpoint/flush with the guard bound at line {} still live; \
                         drop the guard first or narrow its scope",
                        live[0].0 + 1
                    ),
                    allowed: false,
                });
                live.clear(); // one finding per overlong scope
            }
            for c in code.chars() {
                match c {
                    '{' => d += 1,
                    '}' => {
                        d -= 1;
                        if d == 0 {
                            break 'body;
                        }
                        live.retain(|&(_, bd)| bd <= d);
                    }
                    _ => {}
                }
            }
            if binds_guard {
                live.push((k, d));
            }
            k += 1;
        }
        idx = k.max(idx) + 1;
    }
}

fn rule_wall_clock(file: &PreparedFile, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for tok in ["Instant::now", "SystemTime"] {
            if line.code.contains(tok) {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    rule: "wall-clock",
                    message: format!(
                        "`{tok}` outside the clock abstraction breaks deterministic \
                         replay; use simulated time (or allowlist a measurement binary)",
                    ),
                    allowed: false,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Token-stream helpers for the structural rules.

/// True when the tokens at `i` match `pat` exactly (by text).
fn seq_at(toks: &[Tok], i: usize, pat: &[&str]) -> bool {
    i + pat.len() <= toks.len() && pat.iter().enumerate().all(|(k, p)| toks[i + k].text == *p)
}

/// Function bodies as `(fn_kw, open_brace, close_brace)` token indices.
/// The body `{` is the first one at paren/bracket depth 0 after the `fn`
/// keyword; a `;` first means a bodyless trait method. Nested `fn` items
/// are folded into their enclosing body (their statements still get
/// walked, just not as a separate body).
fn fn_bodies(toks: &[Tok]) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokenKind::Ident && toks[i].text == "fn") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let mut paren: i64 = 0;
        let mut open = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "{" if paren == 0 => {
                    open = Some(j);
                    break;
                }
                ";" if paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let mut depth: i64 = 0;
        let mut k = open;
        let mut close = toks.len().saturating_sub(1);
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        out.push((i, open, close));
        i = close + 1;
    }
    out
}

/// Splits a token range into statement-ish slices on `;`/`{`/`}`. Nested
/// blocks' statements come out as separate slices in source order, which
/// is exactly what the source-order heuristics want.
fn statements(toks: &[Tok], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut s = start;
    for (k, tok) in toks.iter().enumerate().take(end).skip(start) {
        if matches!(tok.text.as_str(), ";" | "{" | "}") {
            if k > s {
                out.push((s, k));
            }
            s = k + 1;
        }
    }
    if end > s {
        out.push((s, end));
    }
    out
}

/// Lowercased identifier texts of the receiver chain ending just before
/// token `dot` (`self.inner.shards[i].lock` → `[self, inner, shards, i]`).
/// Walks back over idents, numbers, `.` and `[]`/`()` so field chains and
/// index/call results are both covered; anything else ends the chain.
fn receiver_idents(toks: &[Tok], dot: usize, stmt_start: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut k = dot;
    while k > stmt_start {
        k -= 1;
        let t = &toks[k];
        match t.kind {
            TokenKind::Ident => idents.push(t.text.to_ascii_lowercase()),
            TokenKind::NumLit => {}
            _ => match t.text.as_str() {
                "." | "[" | "]" | "(" | ")" | "&" | "*" | "?" => {}
                _ => break,
            },
        }
    }
    idents
}

/// Does the statement mention an identifier containing `needle`?
fn stmt_names(toks: &[Tok], s: usize, e: usize, needle: &str) -> bool {
    toks[s..e]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text.to_ascii_lowercase().contains(needle))
}

/// Which class of lock an acquisition belongs to in the pool's total order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockClass {
    Shard,
    Store,
    Wal,
    Flight,
}

fn class_name(c: LockClass) -> &'static str {
    match c {
        LockClass::Shard => "shard-lock",
        LockClass::Store => "store-lock",
        LockClass::Wal => "WAL-lock",
        LockClass::Flight => "flight-latch",
    }
}

/// Lock acquisitions in one statement, in source order, plus the token
/// index of a `.rev()` over a shard iteration if present.
fn stmt_acquisitions(toks: &[Tok], s: usize, e: usize) -> (Vec<(LockClass, usize)>, Option<usize>) {
    let mut acqs = Vec::new();
    let mut rev = None;
    let mut k = s;
    while k + 2 < e {
        if toks[k].text != "." || toks[k + 2].text != "(" {
            k += 1;
            continue;
        }
        let recv = receiver_idents(toks, k, s);
        let has = |needle: &str| recv.iter().any(|r| r.contains(needle));
        match toks[k + 1].text.as_str() {
            "lock" => {
                if has("shard") {
                    acqs.push((LockClass::Shard, k + 1));
                } else if has("wal") {
                    acqs.push((LockClass::Wal, k + 1));
                } else if has("flight") || has("latch") {
                    acqs.push((LockClass::Flight, k + 1));
                } else if stmt_names(toks, s, e, "shard") {
                    // `.map(|s| s.lock())` over the shard table: the
                    // receiver is a closure variable, but the statement
                    // names the shards.
                    acqs.push((LockClass::Shard, k + 1));
                }
            }
            "read" | "write" => {
                // Lock acquisitions take no arguments; store *I/O* writes
                // (`store.write(buf)`) do, and stay wal-order's business.
                let empty = toks.get(k + 3).is_some_and(|t| t.text == ")");
                if empty && has("store") {
                    acqs.push((LockClass::Store, k + 1));
                }
            }
            "run" if has("scheduler") || has("flight") => {
                acqs.push((LockClass::Flight, k + 1));
            }
            "rev" if has("shard") => {
                rev = Some(k + 1);
            }
            _ => {}
        }
        k += 1;
    }
    (acqs, rev)
}

/// lock-order: see [`RULES`]. Walks each non-test function body in the
/// hardened crates statement by statement, tracking the first store/WAL/
/// flight acquisition; a shard acquisition after one is an inversion, and
/// a `.rev()` over a shard iteration breaks the ascending all-shard order.
fn rule_lock_order(file: &PreparedFile, path_str: &str, out: &mut Vec<Violation>) {
    if !in_hardened_crates(path_str) {
        return;
    }
    let toks = &file.toks;
    let lines = &file.lines;
    for (fk, open, close) in fn_bodies(toks) {
        if lines.get(toks[fk].line).is_some_and(|l| l.in_test) {
            continue;
        }
        let mut blocker: Option<(LockClass, usize)> = None; // (class, line idx)
        for (s, e) in statements(toks, open + 1, close) {
            if lines.get(toks[s].line).is_some_and(|l| l.in_test) {
                continue;
            }
            let (acqs, rev) = stmt_acquisitions(toks, s, e);
            if let Some(rt) = rev {
                let li = toks[rt].line;
                if !justified(lines, li, "lock-order-ok:") {
                    out.push(Violation {
                        file: file.rel_path.clone(),
                        line: li + 1,
                        rule: "lock-order",
                        message: "`.rev()` over a shard iteration inverts the ascending \
                                  all-shard lock order; iterate shards in ascending index \
                                  order (or justify with `// lock-order-ok:`)"
                            .to_string(),
                        allowed: false,
                    });
                }
            }
            for &(class, at) in &acqs {
                let li = toks[at].line;
                match class {
                    LockClass::Shard => {
                        if let Some((bc, bl)) = blocker {
                            if !justified(lines, li, "lock-order-ok:") {
                                out.push(Violation {
                                    file: file.rel_path.clone(),
                                    line: li + 1,
                                    rule: "lock-order",
                                    message: format!(
                                        "shard lock acquired after the {} acquisition at line \
                                         {}; the lock order is shard above store/WAL/flight \
                                         (justify released two-phase acquisitions with \
                                         `// lock-order-ok:`)",
                                        class_name(bc),
                                        bl + 1
                                    ),
                                    allowed: false,
                                });
                            }
                        }
                    }
                    other => {
                        if blocker.is_none() {
                            blocker = Some((other, li));
                        }
                    }
                }
            }
        }
    }
}

/// Guard types that pin frames; see the guard-send rule.
const GUARD_TYPES: &[&str] = &["PinToken", "PageReadGuard", "PageWriteGuard"];

/// guard-send: see [`RULES`]. Two checks — guard types in struct/enum
/// fields (outside the guard definitions themselves), and guard bindings
/// or guard types inside a `thread::spawn(...)` call's argument.
fn rule_guard_send(file: &PreparedFile, path_str: &str, out: &mut Vec<Violation>) {
    let toks = &file.toks;
    let lines = &file.lines;

    if path_str != "crates/core/src/guard.rs" {
        let mut i = 0;
        while i < toks.len() {
            let kw = &toks[i];
            if !(kw.kind == TokenKind::Ident && (kw.text == "struct" || kw.text == "enum"))
                || lines.get(kw.line).is_some_and(|l| l.in_test)
            {
                i += 1;
                continue;
            }
            // Body starts at `{` or `(` outside the generics (`->` in
            // Fn-trait bounds guards its `>`); `;` means a unit struct.
            let mut j = i + 1;
            let mut angle: i64 = 0;
            let mut body = None;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => angle += 1,
                    ">" if j > 0 && toks[j - 1].text != "-" => angle -= 1,
                    "{" | "(" if angle <= 0 => {
                        body = Some(j);
                        break;
                    }
                    ";" if angle <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = body else {
                i = j + 1;
                continue;
            };
            let (oc, cc) = if toks[open].text == "{" {
                ("{", "}")
            } else {
                ("(", ")")
            };
            let mut depth: i64 = 0;
            let mut k = open;
            while k < toks.len() {
                if toks[k].text == oc {
                    depth += 1;
                } else if toks[k].text == cc {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if toks[k].kind == TokenKind::Ident
                    && GUARD_TYPES.contains(&toks[k].text.as_str())
                {
                    let li = toks[k].line;
                    if !lines.get(li).is_some_and(|l| l.in_test)
                        && !justified(lines, li, "guard-send-ok:")
                    {
                        out.push(Violation {
                            file: file.rel_path.clone(),
                            line: li + 1,
                            rule: "guard-send",
                            message: format!(
                                "guard type `{}` stored in a struct/enum field escapes its \
                                 pin scope; hold guards on the stack (or justify with \
                                 `// guard-send-ok:`)",
                                toks[k].text
                            ),
                            allowed: false,
                        });
                    }
                }
                k += 1;
            }
            i = k + 1;
        }
    }

    for (fk, open, close) in fn_bodies(toks) {
        if lines.get(toks[fk].line).is_some_and(|l| l.in_test) {
            continue;
        }
        // Guard bindings: a `let` whose name says guard, or whose
        // initializer calls `.fetch(`/`.fetch_mut(` at the statement's own
        // bracket depth (a fetch inside a nested closure is that closure's
        // binding, not this statement's).
        let mut bindings: Vec<(String, usize)> = Vec::new();
        let mut k = open + 1;
        while k < close {
            if !(toks[k].kind == TokenKind::Ident && toks[k].text == "let") {
                k += 1;
                continue;
            }
            let mut depth: i64 = 0;
            let mut e = k + 1;
            while e < close {
                match toks[e].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth <= 0 => break,
                    _ => {}
                }
                e += 1;
            }
            let name = (k + 1..e)
                .find(|&x| toks[x].kind == TokenKind::Ident && toks[x].text != "mut")
                .map(|x| toks[x].text.clone());
            let mut is_guard = name
                .as_deref()
                .is_some_and(|n| n.to_ascii_lowercase().contains("guard"));
            let mut depth: i64 = 0;
            for x in k + 1..e {
                match toks[x].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "." if depth == 0
                        && x + 2 < e
                        && matches!(toks[x + 1].text.as_str(), "fetch" | "fetch_mut")
                        && toks[x + 2].text == "(" =>
                    {
                        is_guard = true;
                    }
                    _ => {}
                }
            }
            if is_guard {
                if let Some(n) = name {
                    bindings.push((n, k));
                }
            }
            k = e;
        }
        // Spawn sites whose argument mentions a guard binding or type.
        let mut k = open + 1;
        while k < close {
            let is_spawn = toks[k].kind == TokenKind::Ident
                && toks[k].text == "spawn"
                && toks.get(k + 1).is_some_and(|t| t.text == "(")
                && (k.saturating_sub(3)..k).any(|x| toks[x].text == "thread");
            if !is_spawn {
                k += 1;
                continue;
            }
            let mut depth: i64 = 0;
            let mut e = k + 1;
            while e < close {
                match toks[e].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                e += 1;
            }
            let captured = (k + 2..e).find(|&x| {
                toks[x].kind == TokenKind::Ident
                    && (GUARD_TYPES.contains(&toks[x].text.as_str())
                        || bindings.iter().any(|(n, at)| *at < k && *n == toks[x].text))
            });
            if let Some(x) = captured {
                let li = toks[k].line;
                if !lines.get(li).is_some_and(|l| l.in_test)
                    && !justified(lines, li, "guard-send-ok:")
                {
                    out.push(Violation {
                        file: file.rel_path.clone(),
                        line: li + 1,
                        rule: "guard-send",
                        message: format!(
                            "`thread::spawn` closure captures guard `{}`; a frame pin must \
                             not cross to an unbounded thread (justify with \
                             `// guard-send-ok:`)",
                            toks[x].text
                        ),
                        allowed: false,
                    });
                }
            }
            k = e + 1;
        }
    }
}

/// A pair of stats counters that must move together, and the one file
/// whose lock scope makes the pair atomic.
struct CounterPair {
    a: &'static str,
    b: &'static str,
    home: &'static str,
}

/// The manifest of paired counters the counter-pair rule enforces.
const COUNTER_PAIRS: &[CounterPair] = &[
    CounterPair {
        a: "evictions",
        b: "failed_evictions",
        home: "crates/core/src/manager.rs",
    },
    CounterPair {
        a: "led",
        b: "joined",
        home: "crates/storage/src/scheduler.rs",
    },
];

/// counter-pair: see [`RULES`]. An increment site is an exact identifier
/// match followed by `+=` or `.fetch_add(`; outside the pair's home file
/// it is flagged outright, inside it the sibling must be incremented in
/// the same function body.
fn rule_counter_pair(file: &PreparedFile, path_str: &str, out: &mut Vec<Violation>) {
    let toks = &file.toks;
    let lines = &file.lines;
    let mut sites: Vec<(usize, &'static str, usize)> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let Some((pi, member)) = COUNTER_PAIRS.iter().enumerate().find_map(|(pi, p)| {
            if t.text == p.a {
                Some((pi, p.a))
            } else if t.text == p.b {
                Some((pi, p.b))
            } else {
                None
            }
        }) else {
            continue;
        };
        let inc = seq_at(toks, k + 1, &["+", "="]) || seq_at(toks, k + 1, &[".", "fetch_add", "("]);
        if inc && !lines.get(t.line).is_some_and(|l| l.in_test) {
            sites.push((pi, member, k));
        }
    }
    if sites.is_empty() {
        return;
    }
    let bodies = fn_bodies(toks);
    let body_of = |k: usize| bodies.iter().position(|&(_, o, c)| o < k && k < c);
    for &(pi, member, k) in &sites {
        let pair = &COUNTER_PAIRS[pi];
        let li = toks[k].line;
        if justified(lines, li, "counter-ok:") {
            continue;
        }
        let sibling = if member == pair.a { pair.b } else { pair.a };
        if path_str != pair.home {
            out.push(Violation {
                file: file.rel_path.clone(),
                line: li + 1,
                rule: "counter-pair",
                message: format!(
                    "`{member}` incremented outside its home file {}; the {}/{} pair is \
                     only atomic under the home lock scope (justify with `// counter-ok:`)",
                    pair.home, pair.a, pair.b
                ),
                allowed: false,
            });
            continue;
        }
        let body = body_of(k);
        let sibling_here = sites
            .iter()
            .any(|&(pi2, m2, k2)| pi2 == pi && m2 == sibling && body_of(k2) == body);
        if !sibling_here {
            out.push(Violation {
                file: file.rel_path.clone(),
                line: li + 1,
                rule: "counter-pair",
                message: format!(
                    "`{member}` incremented without its paired `{sibling}` in the same \
                     function body; probes assert the pair moves together (justify with \
                     `// counter-ok:`)"
                ),
                allowed: false,
            });
        }
    }
}

/// One allowlist entry: `rule path-prefix reason...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry silences.
    pub rule: String,
    /// Workspace-relative path prefix the entry covers.
    pub path_prefix: String,
    /// Why the violation is acceptable (required).
    pub reason: String,
}

/// Parses `allowlist.txt`: one entry per line, `#` comments, blank lines
/// ignored. Returns an error message for a malformed line.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let (Some(rule_id), Some(path), Some(reason)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "allowlist line {}: expected `rule path reason...`, got `{raw}`",
                no + 1
            ));
        };
        if rule(rule_id).is_none() {
            return Err(format!(
                "allowlist line {}: unknown rule `{rule_id}`",
                no + 1
            ));
        }
        entries.push(AllowEntry {
            rule: rule_id.to_string(),
            path_prefix: path.to_string(),
            reason: reason.trim().to_string(),
        });
    }
    Ok(entries)
}

/// Marks violations covered by the allowlist.
pub fn apply_allowlist(violations: &mut [Violation], allow: &[AllowEntry]) {
    for v in violations.iter_mut() {
        let path = v.file.to_string_lossy().replace('\\', "/");
        if allow
            .iter()
            .any(|a| a.rule == v.rule && path.starts_with(&a.path_prefix))
        {
            v.allowed = true;
        }
    }
}

/// Which workspace files the lint pass scans: Rust sources under `crates/`,
/// the root `src/`, `examples/` and `tests/` — never `shims/` (stand-ins
/// for external crates play by external rules) or `target/`.
pub fn scan_roots() -> &'static [&'static str] {
    &["crates", "src", "examples", "tests"]
}

/// Recursively collects `.rs` files under `root/<scan roots>`, returning
/// workspace-relative paths in sorted (deterministic) order.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        let mut entries: Vec<_> = std::fs::read_dir(dir)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                walk(&path, out)?;
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    for sub in scan_roots() {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    for p in &mut out {
        if let Ok(rel) = p.strip_prefix(root) {
            *p = rel.to_path_buf();
        }
    }
    out.sort();
    Ok(out)
}

/// Everything one `check` run produced: the violations (allowed ones
/// marked) and the parsed allowlist, so the driver can compute staleness.
pub struct CheckOutcome {
    /// All findings, in file order.
    pub violations: Vec<Violation>,
    /// The parsed allowlist entries (empty when no allowlist file exists).
    pub allowlist: Vec<AllowEntry>,
}

/// Lints the workspace at `root`, returning violations and the allowlist.
pub fn check_workspace_full(root: &Path) -> Result<CheckOutcome, String> {
    let allow_path = root.join("crates/analyze/allowlist.txt");
    let allow = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
        parse_allowlist(&text)?
    } else {
        Vec::new()
    };
    let files = collect_files(root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let mut violations = Vec::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("reading {}: {e}", rel.display()))?;
        check_file(&rel, &source, &mut violations);
    }
    apply_allowlist(&mut violations, &allow);
    Ok(CheckOutcome {
        violations,
        allowlist: allow,
    })
}

/// Lints the workspace at `root`. Returns all violations (allowed ones
/// marked), or an IO/parse error message.
pub fn check_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    check_workspace_full(root).map(|o| o.violations)
}

/// Allowlist entries whose rule/path-prefix no longer matches any
/// violation — entries that would silence nothing and should be pruned
/// before they hide a future regression at the same path.
pub fn stale_entries(allow: &[AllowEntry], violations: &[Violation]) -> Vec<AllowEntry> {
    allow
        .iter()
        .filter(|a| {
            !violations.iter().any(|v| {
                v.rule == a.rule
                    && v.file
                        .to_string_lossy()
                        .replace('\\', "/")
                        .starts_with(&a.path_prefix)
            })
        })
        .cloned()
        .collect()
}

/// Rewrites allowlist text with the `stale` entries removed, preserving
/// comments, blank lines and the order of surviving entries byte-for-byte.
pub fn prune_allowlist_text(text: &str, stale: &[AllowEntry]) -> String {
    let mut out = String::new();
    for raw in text.lines() {
        let line = raw.trim();
        let keep = if line.is_empty() || line.starts_with('#') {
            true
        } else {
            let mut parts = line.splitn(3, char::is_whitespace);
            match (parts.next(), parts.next()) {
                (Some(rule_id), Some(path)) => !stale
                    .iter()
                    .any(|s| s.rule == rule_id && s.path_prefix == path),
                _ => true,
            }
        };
        if keep {
            out.push_str(raw);
            out.push('\n');
        }
    }
    out
}

/// Escapes `s` for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable `check --json` report: every violation
/// (with its allowlisted flag), the stale allowlist entries, and summary
/// counts. Hand-rolled — the report shape is small and stable, and the
/// lint pass stays dependency-free.
pub fn render_json(violations: &[Violation], stale: &[AllowEntry]) -> String {
    let mut out = String::from("{\n  \"violations\": [\n");
    for (i, v) in violations.iter().enumerate() {
        let path = v.file.to_string_lossy().replace('\\', "/");
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"allowed\": {}, \
             \"message\": \"{}\"}}{}\n",
            json_escape(&path),
            v.line,
            v.rule,
            v.allowed,
            json_escape(&v.message),
            if i + 1 < violations.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"stale_allowlist\": [\n");
    for (i, s) in stale.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path_prefix\": \"{}\", \"reason\": \"{}\"}}{}\n",
            json_escape(&s.rule),
            json_escape(&s.path_prefix),
            json_escape(&s.reason),
            if i + 1 < stale.len() { "," } else { "" }
        ));
    }
    let fatal = violations.iter().filter(|v| !v.allowed).count();
    let allowed = violations.len() - fatal;
    out.push_str(&format!(
        "  ],\n  \"total\": {}, \"allowed\": {}, \"fatal\": {}, \"stale\": {}\n}}\n",
        violations.len(),
        allowed,
        fatal,
        stale.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        check_file(Path::new(path), src, &mut out);
        out
    }

    #[test]
    fn no_panic_flags_unwrap_in_hardened_crates_only() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint("crates/core/src/a.rs", src).len(), 1);
        assert_eq!(lint("crates/storage/src/a.rs", src).len(), 1);
        assert_eq!(lint("crates/exp/src/a.rs", src).len(), 0);
    }

    #[test]
    fn no_panic_accepts_invariant_comments() {
        let same = "fn f() { x.expect(\"y\"); // invariant: always present\n}\n";
        assert!(lint("crates/core/src/a.rs", same).is_empty());
        let above = "fn f() {\n // invariant: seeded in new()\n x.expect(\"y\");\n}\n";
        assert!(lint("crates/core/src/a.rs", above).is_empty());
    }

    #[test]
    fn no_panic_skips_test_code_and_strings_and_expect_err() {
        let test_mod = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); }\n}\n";
        assert!(lint("crates/core/src/a.rs", test_mod).is_empty());
        let in_string = "fn f() { let s = \"don't .unwrap() here\"; }\n";
        assert!(lint("crates/core/src/a.rs", in_string).is_empty());
        let err_probe = "fn f() { let e = r.expect_err(\"must fail\"); let _ = e; }\n";
        assert!(
            lint("crates/core/src/a.rs", err_probe).is_empty(),
            "expect_err is an error-path probe, not a panic on the happy path"
        );
    }

    #[test]
    fn sync_facade_flags_direct_primitives() {
        let pl = "use parking_lot::Mutex;\n";
        assert_eq!(lint("crates/core/src/a.rs", pl).len(), 1);
        let stdm = "use std::sync::Mutex;\n";
        assert_eq!(lint("crates/exp/src/a.rs", stdm).len(), 1);
        let grouped = "use std::sync::{Arc, Mutex};\n";
        assert_eq!(lint("crates/exp/src/a.rs", grouped).len(), 1);
        let arc_only = "use std::sync::Arc;\n";
        assert!(lint("crates/exp/src/a.rs", arc_only).is_empty());
        let atomics = "use std::sync::atomic::{AtomicU64, Ordering};\n";
        assert_eq!(lint("crates/exp/src/a.rs", atomics).len(), 1);
    }

    #[test]
    fn sync_facade_exempts_the_facade_and_shims() {
        let src = "pub use parking_lot::{Mutex, RwLock};\n";
        assert!(lint("crates/storage/src/sync.rs", src).is_empty());
        assert!(lint("shims/parking_lot/src/lib.rs", src).is_empty());
    }

    #[test]
    fn relaxed_requires_justification() {
        let bare = "fn f(a: &A) { a.n.load(Ordering::Relaxed); }\n";
        assert_eq!(lint("crates/storage/src/a.rs", bare).len(), 1);
        let ok = "fn f(a: &A) {\n // relaxed-ok: lone counter\n a.n.load(Ordering::Relaxed); }\n";
        assert!(lint("crates/storage/src/a.rs", ok).is_empty());
    }

    #[test]
    fn wal_order_flags_store_before_append() {
        let bad = "fn w(&mut self) -> R {\n io.store(&p)?;\n self.wal_append(&p)?;\n Ok(())\n}\n";
        let v = lint("crates/core/src/m.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "wal-order");
        let good = "fn w(&mut self) -> R {\n self.wal_append(&p)?;\n io.store(&p)?;\n Ok(())\n}\n";
        assert!(lint("crates/core/src/m.rs", good).is_empty());
        let only_store = "fn w(&mut self) -> R { io.store(&p) }\n";
        assert!(lint("crates/core/src/m.rs", only_store).is_empty());
    }

    #[test]
    fn guard_scope_flags_forgotten_guards() {
        let bad = "fn f(b: &B) { let guard = b.fetch(id, ctx)?; std::mem::forget(guard); }\n";
        let v = lint("crates/rtree/src/a.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "guard-scope");
        let ok = "fn f(x: Widget) { std::mem::forget(x); }\n";
        assert!(
            lint("crates/rtree/src/a.rs", ok).is_empty(),
            "forgetting a non-guard is someone else's problem"
        );
        let justified =
            "fn f(b: &B) {\n // guard-scope-ok: leak test fixture\n std::mem::forget(guard);\n}\n";
        assert!(lint("crates/rtree/src/a.rs", justified).is_empty());
    }

    #[test]
    fn guard_scope_flags_guards_held_across_flush() {
        let bad = "fn f(p: &P) -> R {\n let g = p.fetch(id, ctx)?;\n p.flush()?;\n Ok(())\n}\n";
        let v = lint("crates/exp/src/a.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "guard-scope");
        assert_eq!(v[0].line, 3);
        let dropped =
            "fn f(p: &P) -> R {\n let g = p.fetch(id, ctx)?;\n drop(g);\n p.checkpoint()?;\n Ok(())\n}\n";
        assert!(lint("crates/exp/src/a.rs", dropped).is_empty());
        let scoped =
            "fn f(p: &P) -> R {\n {\n let g = p.fetch(id, ctx)?;\n }\n p.flush()?;\n Ok(())\n}\n";
        assert!(
            lint("crates/exp/src/a.rs", scoped).is_empty(),
            "a guard whose scope closed is no longer held"
        );
        let in_test =
            "#[cfg(test)]\nmod t {\n fn f(p: &P) { let g = p.fetch(id, ctx); p.flush(); }\n}\n";
        assert!(lint("crates/exp/src/a.rs", in_test).is_empty());
    }

    #[test]
    fn wall_clock_flags_instant_and_systemtime() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(lint("crates/exp/src/a.rs", src).len(), 1);
        let st = "fn f() { let t = std::time::SystemTime::now(); }\n";
        assert_eq!(lint("examples/x.rs", st).len(), 1);
        let sim = "fn f() { let t = clock.simulated_ms(); }\n";
        assert!(lint("crates/exp/src/a.rs", sim).is_empty());
    }

    #[test]
    fn allowlist_parses_and_applies() {
        let text = "# comment\nwall-clock crates/exp/src/bin/repro.rs reports real time\n";
        let allow = parse_allowlist(text).expect("parse");
        assert_eq!(allow.len(), 1);
        let mut v = vec![Violation {
            file: PathBuf::from("crates/exp/src/bin/repro.rs"),
            line: 3,
            rule: "wall-clock",
            message: String::new(),
            allowed: false,
        }];
        apply_allowlist(&mut v, &allow);
        assert!(v[0].allowed);
        assert!(parse_allowlist("bogus-rule x y\n").is_err());
        assert!(parse_allowlist("no-panic onlytwo\n").is_err());
    }

    #[test]
    fn block_comments_and_raw_strings_are_stripped() {
        let src = "fn f() { /* .unwrap() in comment */ let s = r#\"panic!\"#; }\n";
        assert!(lint("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x.unwrap() }\n";
        // The unwrap must still be seen even with lifetimes around.
        assert_eq!(lint("crates/core/src/a.rs", src).len(), 1);
    }

    #[test]
    fn cfg_test_region_ends_with_its_brace() {
        let src = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); } }\nfn g() { y.unwrap(); }\n";
        let v = lint("crates/core/src/a.rs", src);
        assert_eq!(v.len(), 1, "only the post-module unwrap is flagged");
        assert_eq!(v[0].line, 3);
    }

    // --- lexer blind-spot regressions (the old char scanner got these
    // wrong for every rule; the token lexer pins them) ---

    #[test]
    fn multi_line_raw_strings_keep_line_numbers_honest() {
        let src = "fn f() {\n let s = r##\"line\ntwo \"# still\nraw\"##;\n x.unwrap();\n}\n";
        let v = lint("crates/core/src/a.rs", src);
        assert_eq!(v.len(), 1, "only the unwrap after the raw string fires");
        assert_eq!(v[0].line, 5, "line attribution must survive the literal");
    }

    #[test]
    fn nested_block_comment_tail_is_still_code() {
        let hidden = "fn f() { /* x.unwrap() /* panic! */ todo! */ }\n";
        assert!(lint("crates/core/src/a.rs", hidden).is_empty());
        let after = "fn f() { /* /* inner */ still comment */ x.unwrap(); }\n";
        assert_eq!(
            lint("crates/core/src/a.rs", after).len(),
            1,
            "code after a nested comment closes is code again"
        );
    }

    #[test]
    fn lifetime_heavy_code_is_not_swallowed_as_char_literals() {
        let src = "impl<'a, 'b: 'a> F<'a> for G<'b> {\n fn f(&'a self) { s.unwrap(); }\n}\n";
        let v = lint("crates/core/src/a.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn cfg_test_inside_literals_opens_no_region() {
        let plain = "fn f() { let s = \"#[cfg(test)]\"; }\nfn g() { y.unwrap(); }\n";
        assert_eq!(lint("crates/core/src/a.rs", plain).len(), 1);
        let raw = "fn f() { let s = r#\"#[cfg(test)]\"#; }\nfn g() { y.unwrap(); }\n";
        assert_eq!(lint("crates/core/src/a.rs", raw).len(), 1);
    }

    // --- lock-order ---

    #[test]
    fn lock_order_flags_shard_after_store() {
        let bad =
            "fn f(&self) {\n let st = self.store.read();\n let sh = self.shards[0].lock();\n}\n";
        let v = lint("crates/core/src/a.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "lock-order");
        assert_eq!(v[0].line, 3);
        let good =
            "fn f(&self) {\n let sh = self.shards[0].lock();\n let st = self.store.read();\n}\n";
        assert!(lint("crates/core/src/a.rs", good).is_empty());
        assert!(
            lint("crates/exp/src/a.rs", bad).is_empty(),
            "only the hardened crates carry the lock order"
        );
    }

    #[test]
    fn lock_order_flags_shard_after_wal_and_flight() {
        let wal = "fn f(&self) {\n let w = self.wal.lock();\n let sh = self.shards[0].lock();\n}\n";
        let v = lint("crates/core/src/a.rs", wal);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("WAL-lock"));
        let flight =
            "fn f(&self) {\n let r = self.scheduler.run(id, f);\n let sh = self.shards[0].lock();\n}\n";
        let v = lint("crates/storage/src/a.rs", flight);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("flight-latch"));
    }

    #[test]
    fn lock_order_flags_reversed_shard_iteration() {
        let bad = "fn f(&self) {\n let g: Vec<_> = self.shards.iter().rev().map(|s| s.lock()).collect();\n}\n";
        let v = lint("crates/core/src/a.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "lock-order");
        assert!(v[0].message.contains("ascending"));
        let asc =
            "fn f(&self) {\n let g: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();\n}\n";
        assert!(lint("crates/core/src/a.rs", asc).is_empty());
    }

    #[test]
    fn lock_order_accepts_justified_two_phase_and_test_code() {
        let ok = "fn f(&self) {\n let id = self.store.write().alloc();\n \
                  // lock-order-ok: store lock is a released temporary\n \
                  let sh = self.shards[0].lock();\n}\n";
        assert!(lint("crates/core/src/a.rs", ok).is_empty());
        let test_mod = "#[cfg(test)]\nmod t {\n fn f(&self) { let s = self.store.read(); \
                        let sh = self.shards[0].lock(); }\n}\n";
        assert!(lint("crates/core/src/a.rs", test_mod).is_empty());
    }

    // --- guard-send ---

    #[test]
    fn guard_send_flags_guard_fields_outside_guard_rs() {
        let bad = "struct Held {\n token: PinToken,\n}\n";
        let v = lint("crates/rtree/src/a.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "guard-send");
        assert!(
            lint("crates/core/src/guard.rs", bad).is_empty(),
            "the guard definitions themselves are exempt"
        );
        let ok = "struct Held {\n // guard-send-ok: bounded by the session; dropped in close()\n \
                  guard: PageReadGuard,\n}\n";
        assert!(lint("crates/rtree/src/a.rs", ok).is_empty());
    }

    #[test]
    fn guard_send_flags_guards_crossing_spawn() {
        let bad = "fn f(p: &P) {\n let g = p.fetch(id, ctx)?;\n \
                   let h = thread::spawn(move || use_it(g));\n}\n";
        let v = lint("crates/exp/src/a.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "guard-send");
        assert_eq!(v[0].line, 3);
        let fine = "fn f(p: &P) {\n let g = p.fetch(id, ctx)?;\n \
                    let h = thread::spawn(move || other());\n drop(g);\n}\n";
        assert!(lint("crates/exp/src/a.rs", fine).is_empty());
        let inside =
            "fn f(p: &P) {\n let h = thread::spawn(move || { let g = p.fetch(id, ctx); g.id() });\n}\n";
        assert!(
            lint("crates/exp/src/a.rs", inside).is_empty(),
            "a guard born on the spawned thread stays there"
        );
    }

    // --- counter-pair ---

    #[test]
    fn counter_pair_requires_sibling_in_same_body() {
        let lone = "fn f(&mut self) {\n self.stats.evictions += 1;\n}\n";
        let v = lint("crates/core/src/manager.rs", lone);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "counter-pair");
        let both = "fn f(&mut self) {\n if bad {\n self.stats.failed_evictions += 1;\n } \
                    else {\n self.stats.evictions += 1;\n }\n}\n";
        assert!(lint("crates/core/src/manager.rs", both).is_empty());
        let ok = "fn f(&mut self) {\n // counter-ok: failure path counted by the caller\n \
                  self.stats.evictions += 1;\n}\n";
        assert!(lint("crates/core/src/manager.rs", ok).is_empty());
    }

    #[test]
    fn counter_pair_flags_increments_outside_home() {
        let src = "fn f(s: &Stats) {\n s.led.fetch_add(1, Ordering::SeqCst);\n}\n";
        let v = lint("crates/core/src/elsewhere.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "counter-pair");
        assert!(v[0].message.contains("home file"));
        let home = "fn f(s: &Stats) {\n s.led.fetch_add(1, O::SeqCst);\n \
                    s.joined.fetch_add(1, O::SeqCst);\n}\n";
        assert!(lint("crates/storage/src/scheduler.rs", home).is_empty());
    }

    // --- allowlist pruning and the JSON report ---

    #[test]
    fn stale_entries_and_prune_preserve_live_entries_and_comments() {
        let text = "# keep this comment\n\
                    wall-clock crates/exp/src/bin/repro.rs reports real time\n\
                    wall-clock crates/gone.rs file was deleted\n";
        let allow = parse_allowlist(text).expect("parse");
        let violations = vec![Violation {
            file: PathBuf::from("crates/exp/src/bin/repro.rs"),
            line: 1,
            rule: "wall-clock",
            message: String::new(),
            allowed: true,
        }];
        let stale = stale_entries(&allow, &violations);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path_prefix, "crates/gone.rs");
        let pruned = prune_allowlist_text(text, &stale);
        assert!(pruned.contains("# keep this comment"));
        assert!(pruned.contains("repro.rs"));
        assert!(!pruned.contains("gone.rs"));
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let v = vec![Violation {
            file: PathBuf::from("a.rs"),
            line: 7,
            rule: "no-panic",
            message: "quote \" backslash \\ newline \n".to_string(),
            allowed: false,
        }];
        let json = render_json(&v, &[]);
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("quote \\\" backslash \\\\ newline \\n"));
        assert!(json.contains("\"fatal\": 1"));
        assert!(json.contains("\"stale\": 0"));
    }
}

#[cfg(test)]
mod proptests {
    use super::lexer::lex;
    use proptest::prelude::*;

    /// Fragments chosen to collide: literal openers/closers, comment
    /// delimiters, escapes and lifetimes — concatenating random picks
    /// builds adversarial near-Rust sources.
    const FRAGS: &[&str] = &[
        "fn ",
        "f",
        "(",
        ")",
        "{",
        "}",
        ";",
        " ",
        "\n",
        "let ",
        "x",
        "=",
        "\"",
        "\\\"",
        "\\",
        "'",
        "'a",
        "'a'",
        "'\\n'",
        "r\"",
        "r#\"",
        "\"#",
        "#",
        "//",
        "/*",
        "*/",
        "*",
        "/",
        "b",
        "r",
        "br#\"",
        "0x1f",
        "1_000",
        ".unwrap()",
        "Ordering::Relaxed",
        "日本",
        "\t",
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn lexing_round_trips_byte_for_byte(
            picks in prop::collection::vec(0usize..FRAGS.len(), 0..40),
        ) {
            let src: String = picks.iter().map(|&i| FRAGS[i]).collect();
            let joined: String = lex(&src).iter().map(|t| t.text).collect();
            prop_assert_eq!(joined, src);
        }

        #[test]
        fn lexing_is_prefix_stable(
            picks in prop::collection::vec(0usize..FRAGS.len(), 0..24),
        ) {
            let src: String = picks.iter().map(|&i| FRAGS[i]).collect();
            let toks = lex(&src);
            for k in 0..=toks.len() {
                let prefix: String = toks[..k].iter().map(|t| t.text).collect();
                let again = lex(&prefix);
                prop_assert_eq!(again.len(), k, "prefix of {} tokens re-lexes to {}", k, again.len());
                for (a, b) in again.iter().zip(&toks[..k]) {
                    prop_assert_eq!(a.kind, b.kind);
                    prop_assert_eq!(a.text, b.text);
                }
            }
        }
    }
}
