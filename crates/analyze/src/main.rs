//! CLI driver for the workspace invariant lints.
//!
//! ```text
//! cargo run -p asb-analyze -- check [--root DIR]   lint the workspace
//! cargo run -p asb-analyze -- explain <rule>       print a rule's rationale
//! cargo run -p asb-analyze -- list                 list all rules
//! ```
//!
//! `check` exits 0 when every violation is allowlisted and 1 otherwise;
//! there is deliberately no `--fix` — each finding needs a human to either
//! restructure the code or write down the justification.

use std::path::PathBuf;
use std::process::ExitCode;

use asb_analyze::{check_workspace, rule, RULES};

fn usage() -> ExitCode {
    eprintln!(
        "usage: asb-analyze <command>\n\n\
         commands:\n  \
         check [--root DIR]   lint the workspace (exit 1 on violations)\n  \
         explain <rule>       print a rule's full rationale\n  \
         list                 list all rules"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            let root = match args.get(1).map(String::as_str) {
                Some("--root") => match args.get(2) {
                    Some(dir) => PathBuf::from(dir),
                    None => return usage(),
                },
                Some(_) => return usage(),
                None => PathBuf::from("."),
            };
            run_check(&root)
        }
        Some("explain") => match args.get(1).and_then(|id| rule(id)) {
            Some(r) => {
                println!("[{}] {}\n\n{}", r.id, r.summary, r.explain);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "unknown rule; available: {}",
                    RULES.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
                );
                ExitCode::from(2)
            }
        },
        Some("list") => {
            for r in RULES {
                println!("{:12} {}", r.id, r.summary);
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn run_check(root: &std::path::Path) -> ExitCode {
    match check_workspace(root) {
        Ok(violations) => {
            let allowed = violations.iter().filter(|v| v.allowed).count();
            let fatal: Vec<_> = violations.iter().filter(|v| !v.allowed).collect();
            for v in &fatal {
                println!("{v}");
            }
            println!(
                "asb-analyze: {} violation(s), {} allowlisted, {} fatal",
                violations.len(),
                allowed,
                fatal.len()
            );
            if fatal.is_empty() {
                ExitCode::SUCCESS
            } else {
                println!("run `cargo run -p asb-analyze -- explain <rule>` for rationale");
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("asb-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}
