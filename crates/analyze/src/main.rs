//! CLI driver for the workspace invariant lints.
//!
//! ```text
//! cargo run -p asb-analyze -- check [--root DIR] [--json PATH]
//!                                   [--prune-allowlist [--write]]
//! cargo run -p asb-analyze -- explain <rule>       print a rule's rationale
//! cargo run -p asb-analyze -- list                 list all rules
//! ```
//!
//! `check` exits 0 when every violation is allowlisted, 1 on fatal
//! violations, and 2 when `--prune-allowlist` finds stale entries (an
//! allowlist that silences nothing is rot waiting to hide a regression;
//! `--write` rewrites the file in place). `--json PATH` writes the full
//! machine-readable report (violations, stale entries, counts) for CI to
//! archive. There is deliberately no `--fix` for violations themselves —
//! each finding needs a human to either restructure the code or write down
//! the justification.

use std::path::PathBuf;
use std::process::ExitCode;

use asb_analyze::{
    check_workspace_full, prune_allowlist_text, render_json, rule, stale_entries, RULES,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: asb-analyze <command>\n\n\
         commands:\n  \
         check [--root DIR] [--json PATH] [--prune-allowlist [--write]]\n                       \
         lint the workspace (exit 1 on violations, 2 on stale allowlist)\n  \
         explain <rule>       print a rule's full rationale\n  \
         list                 list all rules"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            let mut root = PathBuf::from(".");
            let mut json: Option<PathBuf> = None;
            let mut prune = false;
            let mut write = false;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--root" => match it.next() {
                        Some(dir) => root = PathBuf::from(dir),
                        None => return usage(),
                    },
                    "--json" => match it.next() {
                        Some(path) => json = Some(PathBuf::from(path)),
                        None => return usage(),
                    },
                    "--prune-allowlist" => prune = true,
                    "--write" => write = true,
                    _ => return usage(),
                }
            }
            run_check(&root, json.as_deref(), prune, write)
        }
        Some("explain") => match args.get(1).and_then(|id| rule(id)) {
            Some(r) => {
                println!("[{}] {}\n\n{}", r.id, r.summary, r.explain);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "unknown rule; available: {}",
                    RULES.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
                );
                ExitCode::from(2)
            }
        },
        Some("list") => {
            for r in RULES {
                println!("{:12} {}", r.id, r.summary);
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn run_check(
    root: &std::path::Path,
    json: Option<&std::path::Path>,
    prune: bool,
    write: bool,
) -> ExitCode {
    let outcome = match check_workspace_full(root) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("asb-analyze: {msg}");
            return ExitCode::from(2);
        }
    };
    let violations = &outcome.violations;
    let stale = if prune {
        stale_entries(&outcome.allowlist, violations)
    } else {
        Vec::new()
    };

    if let Some(path) = json {
        let report = render_json(violations, &stale);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, report) {
            eprintln!("asb-analyze: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let allowed = violations.iter().filter(|v| v.allowed).count();
    let fatal: Vec<_> = violations.iter().filter(|v| !v.allowed).collect();
    for v in &fatal {
        println!("{v}");
    }
    println!(
        "asb-analyze: {} violation(s), {} allowlisted, {} fatal",
        violations.len(),
        allowed,
        fatal.len()
    );
    if !fatal.is_empty() {
        println!("run `cargo run -p asb-analyze -- explain <rule>` for rationale");
        return ExitCode::FAILURE;
    }

    if !stale.is_empty() {
        for s in &stale {
            println!(
                "stale allowlist entry: {} {} ({})",
                s.rule, s.path_prefix, s.reason
            );
        }
        let allow_path = root.join("crates/analyze/allowlist.txt");
        if write {
            match std::fs::read_to_string(&allow_path) {
                Ok(text) => {
                    let pruned = prune_allowlist_text(&text, &stale);
                    if let Err(e) = std::fs::write(&allow_path, pruned) {
                        eprintln!("asb-analyze: writing {}: {e}", allow_path.display());
                        return ExitCode::from(2);
                    }
                    println!("asb-analyze: pruned {} stale entr(y/ies)", stale.len());
                }
                Err(e) => {
                    eprintln!("asb-analyze: reading {}: {e}", allow_path.display());
                    return ExitCode::from(2);
                }
            }
        } else {
            println!(
                "asb-analyze: {} stale allowlist entr(y/ies); rerun with --write to prune",
                stale.len()
            );
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
