//! A small token-level lexer for Rust source.
//!
//! This replaces the old char-level scanner's guesswork with real tokens:
//! raw strings (`r#"…"#`, any hash depth, `br` prefixes), nested block
//! comments, and the `'a`-lifetime vs `'a'`-char-literal distinction are
//! all resolved here, once, instead of being approximated per rule.
//!
//! Two properties the rules (and the proptests) rely on:
//!
//! 1. **Round-trip**: concatenating `token.text` over [`lex`]'s output
//!    reconstructs the input byte-for-byte. Every byte of the source
//!    belongs to exactly one token; nothing is dropped or synthesized.
//! 2. **Prefix stability**: a token's kind and extent depend only on the
//!    bytes up to its end, never on later text — so lexing the
//!    concatenation of the first `k` tokens yields exactly those tokens.
//!
//! The lexer is deliberately coarse where the rules do not care: multi-char
//! operators are emitted as single-char [`TokenKind::Punct`] tokens
//! (`::` is two `:`), and numeric literals swallow any trailing
//! alphanumerics (`0x1f`, `1_000u64`). Unterminated literals and comments
//! extend to end-of-input rather than erroring: lints must degrade
//! gracefully on code mid-edit.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace (newlines included).
    Whitespace,
    /// `// …` up to (not including) the newline.
    LineComment,
    /// `/* … */`, nesting tracked; unterminated runs to end-of-input.
    BlockComment,
    /// Identifier or keyword (also bare `r`/`b` that start no literal).
    Ident,
    /// `'a`, `'static`, `'_` — a quote followed by an identifier with no
    /// closing quote.
    Lifetime,
    /// `'x'`, `'\n'`, `b'x'` — quote-delimited char (or byte) literal.
    CharLit,
    /// `"…"` or `b"…"` with escapes.
    StrLit,
    /// `r"…"`, `r#"…"#`, `br#"…"#` at any hash depth.
    RawStrLit,
    /// Numeric literal (digits plus trailing alphanumerics/underscores).
    NumLit,
    /// Any other single character (operators, brackets, `;`…).
    Punct,
}

/// One token: its kind, exact source text, and 1-based start line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'s> {
    /// What the token is.
    pub kind: TokenKind,
    /// The token's exact bytes from the source (round-trip property).
    pub text: &'s str,
    /// 1-based line number of the token's first byte.
    pub line: usize,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Byte length of the UTF-8 char starting at `b` (1 for ASCII/continuation
/// garbage, so progress is always made).
fn utf8_len(b: u8) -> usize {
    match b {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

/// Splits `src` into [`Token`]s covering every byte exactly once.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < b.len() {
        let start = i;
        let start_line = line;
        let kind = match b[i] {
            c if c.is_ascii_whitespace() => {
                while i < b.len() && b[i].is_ascii_whitespace() {
                    i += 1;
                }
                TokenKind::Whitespace
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                TokenKind::LineComment
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1u32;
                while i < b.len() && depth > 0 {
                    if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                i = scan_string(b, i + 1);
                TokenKind::StrLit
            }
            b'r' | b'b' => match scan_literal_prefix(b, i) {
                Some((end, kind)) => {
                    i = end;
                    kind
                }
                None => {
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    TokenKind::Ident
                }
            },
            b'\'' => {
                let (end, kind) = scan_quote(b, i);
                i = end;
                kind
            }
            c if c.is_ascii_digit() => {
                while i < b.len() && (is_ident_continue(b[i])) {
                    i += 1;
                }
                TokenKind::NumLit
            }
            c if is_ident_start(c) => {
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                TokenKind::Ident
            }
            c => {
                i += utf8_len(c);
                TokenKind::Punct
            }
        };
        debug_assert!(i > start, "lexer must always make progress");
        let text = &src[start..i];
        line += text.bytes().filter(|&c| c == b'\n').count();
        out.push(Token {
            kind,
            text,
            line: start_line,
        });
    }
    out
}

/// Scans a (byte-)string body starting just past the opening quote;
/// returns the index just past the closing quote (or end-of-input).
fn scan_string(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 1 + b.get(i + 1).map_or(0, |&c| utf8_len(c)),
            b'"' => return i + 1,
            c => i += utf8_len(c),
        }
    }
    i
}

/// At an `r` or `b`: recognizes `r"…"`, `r#"…"#` (any depth), `br…`,
/// `b"…"` and `b'…'`. Returns the end index and kind, or `None` when the
/// run is a plain identifier (`radius`, `b`, `r2`, …).
fn scan_literal_prefix(b: &[u8], i: usize) -> Option<(usize, TokenKind)> {
    let mut j = i;
    if b[j] == b'b' {
        match b.get(j + 1) {
            Some(&b'"') => return Some((scan_string(b, j + 2), TokenKind::StrLit)),
            Some(&b'\'') => {
                // Byte char literal: always a char, never a lifetime.
                let (end, _) = scan_quote(b, j + 1);
                return Some((end, TokenKind::CharLit));
            }
            Some(&b'r') => j += 1,
            _ => return None,
        }
    }
    // At `r`: raw string if hashes-then-quote follows.
    debug_assert_eq!(b[j], b'r');
    let mut hashes = 0usize;
    let mut k = j + 1;
    while b.get(k) == Some(&b'#') {
        hashes += 1;
        k += 1;
    }
    if b.get(k) != Some(&b'"') {
        return None;
    }
    k += 1; // past the opening quote
    while k < b.len() {
        if b[k] == b'"' {
            let mut seen = 0usize;
            while seen < hashes && b.get(k + 1 + seen) == Some(&b'#') {
                seen += 1;
            }
            if seen == hashes {
                return Some((k + 1 + hashes, TokenKind::RawStrLit));
            }
        }
        k += utf8_len(b[k]);
    }
    Some((k, TokenKind::RawStrLit))
}

/// At a `'`: distinguishes lifetimes from char literals.
///
/// The rule mirrors rustc's lexer: after the quote, an identifier run that
/// is immediately closed by another `'` is a char literal (`'a'`); one that
/// is not is a lifetime (`'a`, `'static`, `'_`). An escape (`'\n'`) or a
/// non-identifier char (`' '`, `'+'`) is always a char literal. A quote
/// followed by nothing usable is emitted as a lone [`TokenKind::Punct`].
fn scan_quote(b: &[u8], i: usize) -> (usize, TokenKind) {
    match b.get(i + 1) {
        None => (i + 1, TokenKind::Punct),
        Some(&b'\\') => {
            // Escaped char literal: scan to the closing quote.
            let mut k = i + 2 + b.get(i + 2).map_or(0, |&c| utf8_len(c));
            while k < b.len() && b[k] != b'\'' && b[k] != b'\n' {
                k += utf8_len(b[k]);
            }
            if b.get(k) == Some(&b'\'') {
                k += 1;
            }
            (k, TokenKind::CharLit)
        }
        Some(&c) if is_ident_continue(c) => {
            let mut k = i + 1;
            while k < b.len() && is_ident_continue(b[k]) {
                k += utf8_len(b[k]);
            }
            if b.get(k) == Some(&b'\'') {
                (k + 1, TokenKind::CharLit)
            } else {
                (k, TokenKind::Lifetime)
            }
        }
        Some(&b'\'') => (i + 2, TokenKind::Punct), // `''`: empty, degenerate
        Some(&c) => {
            // Single non-identifier char: char literal when closed.
            let k = i + 1 + utf8_len(c);
            if b.get(k) == Some(&b'\'') {
                (k + 1, TokenKind::CharLit)
            } else {
                (i + 1, TokenKind::Punct)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn roundtrip(src: &str) {
        let joined: String = lex(src).iter().map(|t| t.text).collect();
        assert_eq!(joined, src, "tokens must reconstruct the source");
    }

    #[test]
    fn round_trips_basic_code() {
        for src in [
            "fn main() { let x = 1; }\n",
            "let s = \"a \\\" b\"; // trailing\n",
            "let r = r#\"raw \"quote\" inside\"#;\n",
            "let r = r##\"deeper \"# still inside\"##;\n",
            "/* outer /* nested */ still comment */ code();\n",
            "fn f<'a>(x: &'a str) -> &'a str { x }\n",
            "let c = 'x'; let nl = '\\n'; let lt: &'static str = \"\";\n",
            "let b = b\"bytes\"; let bc = b'q'; let br = br#\"raw\"#;\n",
            "let n = 0x1f_u64 + 1_000; let f = 1.5e3;\n",
            "日本語 = \"値\"; // コメント\n",
            "let unterminated = \"runs to eof",
            "/* unterminated comment",
            "r#\"unterminated raw",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn raw_strings_are_single_tokens() {
        let toks = kinds("r#\"has .unwrap() inside\"# + x");
        assert_eq!(
            toks[0],
            (TokenKind::RawStrLit, "r#\"has .unwrap() inside\"#")
        );
        assert!(toks.iter().any(|&(k, t)| k == TokenKind::Ident && t == "x"));
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let toks = kinds("/* a /* b */ c */x");
        assert_eq!(toks[0], (TokenKind::BlockComment, "/* a /* b */ c */"));
        assert_eq!(toks[1], (TokenKind::Ident, "x"));
    }

    #[test]
    fn lifetimes_and_char_literals_are_distinguished() {
        let toks = kinds("<'a> 'static '_ 'x' '\\n' b'z' ' '");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|&&(k, _)| k == TokenKind::Lifetime)
            .map(|&(_, t)| t)
            .collect();
        assert_eq!(lifetimes, ["'a", "'static", "'_"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|&&(k, _)| k == TokenKind::CharLit)
            .map(|&(_, t)| t)
            .collect();
        assert_eq!(chars, ["'x'", "'\\n'", "b'z'", "' '"]);
    }

    #[test]
    fn line_numbers_point_at_token_starts() {
        let toks = lex("a\nb\n/* c\nd */ e\n");
        let find = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 2);
        assert_eq!(find("e"), 4);
        assert_eq!(
            toks.iter().find(|t| t.text.starts_with("/*")).unwrap().line,
            3
        );
    }

    #[test]
    fn bare_r_and_b_stay_identifiers() {
        let toks = kinds("let r = radius; let b = r2d2;");
        assert!(toks
            .iter()
            .all(|&(k, _)| k != TokenKind::RawStrLit && k != TokenKind::StrLit));
        assert!(toks
            .iter()
            .any(|&(k, t)| k == TokenKind::Ident && t == "radius"));
    }
}
