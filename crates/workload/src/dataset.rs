//! Synthetic spatial databases standing in for the paper's two datasets.

use asb_geom::{Point, Rect, SpatialItem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution as _, Normal};
use serde::{Deserialize, Serialize};

/// Which of the paper's two databases to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Database 1: geographic features of a mainland (GNIS-like) —
    /// clustered points and small extended objects inside one irregular
    /// continent outline.
    Mainland,
    /// Database 2: a world atlas — several continents covering ~30 % of the
    /// data space, mixing line features (thin MBRs) and area features.
    World,
}

/// Dataset size presets. Relative buffer sizes (the paper's 0.3 %–4.7 %)
/// make results comparable across scales; the paper itself argues "because
/// of using relative buffer sizes, the results … should hold for the case of
/// larger databases and buffers".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// ~2 000 objects — unit tests and doctests.
    Tiny,
    /// ~20 000 objects — quick experiments and CI.
    Small,
    /// ~120 000 objects — the default for reproducing the figures.
    Medium,
    /// ~480 000 objects — closer to the paper's database sizes.
    Large,
    /// The paper's sizes (1 641 079 / 572 694 objects). Slow to build.
    Paper,
}

impl Scale {
    /// Number of objects for the given dataset kind (database 2 has ~35 %
    /// of database 1's objects, mirroring the paper).
    pub fn objects(&self, kind: DatasetKind) -> usize {
        let mainland = match self {
            Scale::Tiny => 2_000,
            Scale::Small => 20_000,
            Scale::Medium => 120_000,
            Scale::Large => 480_000,
            Scale::Paper => 1_641_079,
        };
        match kind {
            DatasetKind::Mainland => mainland,
            DatasetKind::World => {
                if *self == Scale::Paper {
                    572_694
                } else {
                    (mainland as f64 * 0.35) as usize
                }
            }
        }
    }

    /// Number of places (cities) accompanying the dataset.
    pub fn places(&self) -> usize {
        match self {
            Scale::Tiny => 200,
            Scale::Small => 1_000,
            Scale::Medium => 4_000,
            Scale::Large => 10_000,
            Scale::Paper => 20_000,
        }
    }
}

/// A populated place (city/town), the unit of the similar, intensified and
/// independent query distributions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Place {
    /// Location of the place.
    pub location: Point,
    /// Population (Zipf-distributed; query weighting uses its square root).
    pub population: f64,
}

/// A synthetic spatial database plus the metadata the query generators need.
///
/// ```
/// use asb_workload::{Dataset, DatasetKind, QuerySetSpec, Scale};
///
/// let db = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 42);
/// assert_eq!(db.items().len(), 2_000);
/// assert!(!db.places().is_empty());
///
/// // Query sets are derived deterministically from the dataset.
/// let queries = QuerySetSpec::uniform_windows(33).generate(&db, 100, 7);
/// assert_eq!(queries.len(), 100);
/// assert_eq!(queries, QuerySetSpec::uniform_windows(33).generate(&db, 100, 7));
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    bounds: Rect,
    items: Vec<SpatialItem>,
    places: Vec<Place>,
}

/// The data space. A unit square keeps window-extent arithmetic (1/ex of
/// the space) trivial.
const BOUNDS: Rect = Rect {
    min: Point::new(0.0, 0.0),
    max: Point::new(1.0, 1.0),
};

impl Dataset {
    /// Generates a dataset deterministically from `seed`.
    pub fn generate(kind: DatasetKind, scale: Scale, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        let n = scale.objects(kind);
        let regions = match kind {
            DatasetKind::Mainland => vec![Blob::mainland()],
            DatasetKind::World => Blob::continents(),
        };
        let clusters = make_clusters(&mut rng, &regions, n);
        let items = make_items(&mut rng, kind, &clusters, &regions, n);
        let places = make_places(&mut rng, &clusters, &regions, scale.places());
        Dataset {
            kind,
            scale,
            seed,
            bounds: BOUNDS,
            items,
            places,
        }
    }

    /// The dataset kind.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// The dataset scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The data space (always the unit square).
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The spatial objects.
    pub fn items(&self) -> &[SpatialItem] {
        &self.items
    }

    /// The accompanying places list.
    pub fn places(&self) -> &[Place] {
        &self.places
    }

    /// Deterministic simulated size, in bytes, of the *exact
    /// representation* of object `id` — what an object page would store
    /// (paper, Fig. 1). Point features are small (a coordinate pair plus
    /// attributes); extended features carry vertex lists with a heavy-ish
    /// tail, mirroring real polyline/polygon data.
    pub fn payload_len(&self, id: u64) -> usize {
        let item = &self.items[id as usize % self.items.len()];
        let mut h = id ^ self.seed ^ 0x9E37_79B9_7F4A_7C15;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        if item.mbr.area() == 0.0 && item.mbr.margin() == 0.0 {
            // Point feature: fixed small record.
            24 + (h % 17) as usize
        } else {
            // Extended feature: 16 bytes per vertex, 4..120 vertices with a
            // heavy tail.
            let tail = 4 + (h % 32) + ((h >> 8) % 8) * ((h >> 16) % 12);
            16 * (tail as usize).min(120)
        }
    }
}

/// An elliptic blob with an irregular, deterministic boundary — one
/// continent.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Blob {
    center: Point,
    rx: f64,
    ry: f64,
    /// Phase of the boundary wobble (varies the coastline per continent).
    phase: f64,
    /// Relative weight when distributing objects over continents.
    weight: f64,
}

impl Blob {
    fn mainland() -> Blob {
        Blob {
            center: Point::new(0.5, 0.48),
            rx: 0.40,
            ry: 0.30,
            phase: 1.7,
            weight: 1.0,
        }
    }

    /// A handful of continents covering roughly a third of the space,
    /// biased towards the west half so the x-flip of the independent
    /// distribution lands mostly on water.
    fn continents() -> Vec<Blob> {
        vec![
            Blob {
                center: Point::new(0.22, 0.70),
                rx: 0.16,
                ry: 0.14,
                phase: 0.3,
                weight: 0.30,
            },
            Blob {
                center: Point::new(0.30, 0.35),
                rx: 0.10,
                ry: 0.17,
                phase: 2.1,
                weight: 0.20,
            },
            Blob {
                center: Point::new(0.55, 0.62),
                rx: 0.11,
                ry: 0.10,
                phase: 4.0,
                weight: 0.22,
            },
            Blob {
                center: Point::new(0.62, 0.28),
                rx: 0.09,
                ry: 0.09,
                phase: 5.2,
                weight: 0.13,
            },
            Blob {
                center: Point::new(0.84, 0.52),
                rx: 0.07,
                ry: 0.10,
                phase: 0.9,
                weight: 0.11,
            },
            Blob {
                center: Point::new(0.86, 0.16),
                rx: 0.05,
                ry: 0.05,
                phase: 3.3,
                weight: 0.04,
            },
        ]
    }

    /// Irregular radius multiplier in direction `theta` (the "coastline").
    fn radius_at(&self, theta: f64) -> f64 {
        1.0 + 0.18 * (3.0 * theta + self.phase).sin()
            + 0.09 * (7.0 * theta + 2.0 * self.phase).sin()
    }

    /// Whether `p` lies on this continent.
    pub(crate) fn contains(&self, p: &Point) -> bool {
        let dx = (p.x - self.center.x) / self.rx;
        let dy = (p.y - self.center.y) / self.ry;
        let r = (dx * dx + dy * dy).sqrt();
        if r == 0.0 {
            return true;
        }
        let theta = dy.atan2(dx);
        r <= self.radius_at(theta)
    }

    /// A uniformly random point inside the blob (rejection sampling).
    fn sample_inside(&self, rng: &mut StdRng) -> Point {
        loop {
            let p = Point::new(
                self.center.x + (rng.gen::<f64>() * 2.0 - 1.0) * self.rx * 1.3,
                self.center.y + (rng.gen::<f64>() * 2.0 - 1.0) * self.ry * 1.3,
            );
            if self.contains(&p) && BOUNDS.contains_point(&p) {
                return p;
            }
        }
    }
}

fn land_contains(regions: &[Blob], p: &Point) -> bool {
    regions.iter().any(|b| b.contains(p))
}

#[derive(Debug, Clone, Copy)]
struct Cluster {
    center: Point,
    sigma: f64,
    weight: f64,
    /// Metro cores: compact, object-dense city centers that host the
    /// top-population places. Geographically tiny (their pages fit any
    /// buffer) yet dense (their pages have small MBRs) — the paper's
    /// "areas of intensified interest".
    is_metro: bool,
}

/// Population clusters: where both the objects and the places concentrate.
///
/// Besides the organic Zipf-weighted clusters, a few *metro cores* are
/// planted: each receives ~1 % of the objects within a very small radius.
fn make_clusters(rng: &mut StdRng, regions: &[Blob], n: usize) -> Vec<Cluster> {
    let count = ((n as f64).sqrt() / 3.0).ceil().max(8.0) as usize;
    let total_region_weight: f64 = regions.iter().map(|b| b.weight).sum();
    let pick_blob = |rng: &mut StdRng| {
        let mut pick = rng.gen::<f64>() * total_region_weight;
        for b in regions {
            pick -= b.weight;
            if pick <= 0.0 {
                return *b;
            }
        }
        regions[regions.len() - 1]
    };
    let mut clusters = Vec::with_capacity(count + METRO_COUNT);
    let mut organic_weight = 0.0;
    for i in 0..count {
        let blob = pick_blob(rng);
        let center = blob.sample_inside(rng);
        // Zipf-ish cluster weights: a few large regions, many hamlets.
        let weight = 1.0 / (i as f64 + 1.0).powf(0.8);
        organic_weight += weight;
        let sigma = blob.rx.min(blob.ry) * (0.04 + rng.gen::<f64>() * 0.12);
        clusters.push(Cluster {
            center,
            sigma,
            weight,
            is_metro: false,
        });
    }
    for _ in 0..METRO_COUNT {
        let blob = pick_blob(rng);
        let center = blob.sample_inside(rng);
        clusters.push(Cluster {
            center,
            sigma: 0.003,
            weight: organic_weight * 0.012,
            is_metro: true,
        });
    }
    clusters
}

/// Number of planted metro cores.
const METRO_COUNT: usize = 3;

fn pick_cluster<'a>(rng: &mut StdRng, clusters: &'a [Cluster], total: f64) -> &'a Cluster {
    let mut pick = rng.gen::<f64>() * total;
    for c in clusters {
        pick -= c.weight;
        if pick <= 0.0 {
            return c;
        }
    }
    clusters.last().expect("clusters are never empty")
}

fn make_items(
    rng: &mut StdRng,
    kind: DatasetKind,
    clusters: &[Cluster],
    regions: &[Blob],
    n: usize,
) -> Vec<SpatialItem> {
    let total_weight: f64 = clusters.iter().map(|c| c.weight).sum();
    let mut items = Vec::with_capacity(n);
    // A third of the objects scatter uniformly over land ("rural"
    // features); the rest follow the clusters.
    let scattered_share = 0.33;
    for id in 0..n as u64 {
        let center = if rng.gen::<f64>() < scattered_share {
            sample_on_land(rng, regions)
        } else {
            let c = pick_cluster(rng, clusters, total_weight);
            let normal_x = Normal::new(c.center.x, c.sigma).expect("finite sigma");
            let normal_y = Normal::new(c.center.y, c.sigma).expect("finite sigma");
            let mut tries = 0;
            loop {
                let p = Point::new(normal_x.sample(rng), normal_y.sample(rng));
                if land_contains(regions, &p) && BOUNDS.contains_point(&p) {
                    break p;
                }
                tries += 1;
                if tries > 64 {
                    break c.center;
                }
            }
        };
        let mbr = sample_extent(rng, kind, center);
        items.push(SpatialItem::new(id, mbr));
    }
    items
}

fn sample_on_land(rng: &mut StdRng, regions: &[Blob]) -> Point {
    let total: f64 = regions.iter().map(|b| b.weight).sum();
    let mut pick = rng.gen::<f64>() * total;
    for b in regions {
        pick -= b.weight;
        if pick <= 0.0 {
            return b.sample_inside(rng);
        }
    }
    regions[regions.len() - 1].sample_inside(rng)
}

/// Object footprints. Database 1 mixes points (GNIS is point-heavy) with
/// small extended objects; database 2 mixes line features (thin, elongated
/// MBRs) with area features.
fn sample_extent(rng: &mut StdRng, kind: DatasetKind, center: Point) -> Rect {
    let roll: f64 = rng.gen();
    let (w, h) = match kind {
        DatasetKind::Mainland => {
            if roll < 0.7 {
                (0.0, 0.0) // point feature
            } else {
                // Extended feature with a heavy-ish tail, capped small.
                let s = 0.0004 * (1.0 / (1.0 - rng.gen::<f64>() * 0.98)).min(20.0);
                (s * (0.5 + rng.gen::<f64>()), s * (0.5 + rng.gen::<f64>()))
            }
        }
        DatasetKind::World => {
            let s = 0.0008 * (1.0 / (1.0 - rng.gen::<f64>() * 0.98)).min(25.0);
            if roll < 0.55 {
                // Line feature: elongated thin MBR.
                if rng.gen::<bool>() {
                    (s * 4.0, s * 0.3)
                } else {
                    (s * 0.3, s * 4.0)
                }
            } else {
                // Area feature.
                (s * (0.5 + rng.gen::<f64>()), s * (0.5 + rng.gen::<f64>()))
            }
        }
    };
    Rect::centered(center, w, h)
}

/// Places concentrate in the clusters; populations follow a Zipf law **per
/// cluster**, scaled by the cluster's weight, so the biggest cities sit in
/// the heaviest (= densest) clusters. This correlation is what makes the
/// intensified distribution adversarial for spatial replacement, exactly as
/// the paper explains: "areas of intensified interest are not characterized
/// by large page areas; typically, the opposite case occurs" — dense areas
/// have small pages.
fn make_places(
    rng: &mut StdRng,
    clusters: &[Cluster],
    regions: &[Blob],
    count: usize,
) -> Vec<Place> {
    let total_weight: f64 = clusters.iter().map(|c| c.weight).sum();
    let mut cities_in_cluster = vec![0usize; clusters.len()];
    let mut places = Vec::with_capacity(count);
    for _ in 0..count {
        let (idx, c) = {
            let mut pick = rng.gen::<f64>() * total_weight;
            let mut chosen = clusters.len() - 1;
            for (i, c) in clusters.iter().enumerate() {
                pick -= c.weight;
                if pick <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            (chosen, &clusters[chosen])
        };
        let normal_x = Normal::new(c.center.x, c.sigma * 1.5).expect("finite sigma");
        let normal_y = Normal::new(c.center.y, c.sigma * 1.5).expect("finite sigma");
        let mut location = c.center;
        for _ in 0..64 {
            let p = Point::new(normal_x.sample(rng), normal_y.sample(rng));
            if land_contains(regions, &p) && BOUNDS.contains_point(&p) {
                location = p;
                break;
            }
        }
        // Zipf population per cluster, scaled by the cluster's weight: the
        // heaviest cluster's first city is the metropolis.
        cities_in_cluster[idx] += 1;
        let local_rank = cities_in_cluster[idx] as f64;
        // Metro places are the big cities; everywhere else populations are
        // small towns. The rank^2 decay makes the square-root query
        // weighting of the intensified distribution harmonic (1/rank), so
        // the metro cores carry the bulk of the intensified query mass —
        // concentrated enough that LRU caches their (few, small) pages
        // while the spatial policy keeps evicting them: the paper's
        // "areas of intensified interest" effect. Populations are clamped
        // to at least one inhabitant.
        let base = if c.is_metro { 8_000_000.0 } else { 80_000.0 };
        let population = (base / local_rank.powi(2)).max(1.0);
        places.push(Place {
            location,
            population,
        });
    }
    places
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 42);
        let b = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 42);
        assert_eq!(a.items(), b.items());
        assert_eq!(a.places(), b.places());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 1);
        let b = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 2);
        assert_ne!(a.items(), b.items());
    }

    #[test]
    fn object_counts_match_scale() {
        let d = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 7);
        assert_eq!(d.items().len(), Scale::Tiny.objects(DatasetKind::Mainland));
        assert_eq!(d.places().len(), Scale::Tiny.places());
        let w = Dataset::generate(DatasetKind::World, Scale::Tiny, 7);
        assert_eq!(w.items().len(), Scale::Tiny.objects(DatasetKind::World));
        assert!(w.items().len() < d.items().len());
    }

    #[test]
    fn items_stay_inside_bounds_envelope() {
        for kind in [DatasetKind::Mainland, DatasetKind::World] {
            let d = Dataset::generate(kind, Scale::Tiny, 3);
            for it in d.items() {
                let c = it.mbr.center();
                assert!(
                    d.bounds().contains_point(&c),
                    "{kind:?}: center {c:?} outside"
                );
            }
        }
    }

    #[test]
    fn mainland_leaves_ocean_margins_empty() {
        let d = Dataset::generate(DatasetKind::Mainland, Scale::Small, 11);
        // Corners of the unit square are ocean: no object centers there.
        let corner = Rect::new(0.0, 0.0, 0.04, 0.04);
        let in_corner = d
            .items()
            .iter()
            .filter(|it| corner.contains_point(&it.mbr.center()))
            .count();
        assert_eq!(in_corner, 0, "ocean corner should be empty");
    }

    #[test]
    fn world_covers_a_minority_of_the_space() {
        // Monte-Carlo estimate of land coverage: must be well below half,
        // so the x-flip of the independent query set mostly misses land.
        let regions = Blob::continents();
        let mut rng = StdRng::seed_from_u64(5);
        let mut hits = 0;
        let total = 20_000;
        for _ in 0..total {
            let p = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
            if land_contains(&regions, &p) {
                hits += 1;
            }
        }
        let coverage = hits as f64 / total as f64;
        assert!(coverage > 0.15 && coverage < 0.45, "coverage {coverage}");
    }

    #[test]
    fn world_flip_mostly_misses_land() {
        // The defining property for Figure 9: flipping x of land points
        // lands on water more often than not.
        let d = Dataset::generate(DatasetKind::World, Scale::Tiny, 9);
        let regions = Blob::continents();
        let flipped_on_land = d
            .places()
            .iter()
            .filter(|pl| {
                let f = pl.location.flip_x(0.0, 1.0);
                land_contains(&regions, &f)
            })
            .count();
        let frac = flipped_on_land as f64 / d.places().len() as f64;
        assert!(
            frac < 0.5,
            "flipped-on-land fraction {frac} should be a minority"
        );
    }

    #[test]
    fn populations_are_zipf_like() {
        let d = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 13);
        let pops: Vec<f64> = d.places().iter().map(|p| p.population).collect();
        let max = pops.iter().copied().fold(0.0_f64, f64::max);
        let min = pops.iter().copied().fold(f64::INFINITY, f64::min);
        // Strongly skewed (Zipf-like): orders of magnitude between the
        // metropolis and the smallest hamlet.
        assert!(max > 50.0 * min, "max {max} vs min {min}");
    }

    #[test]
    fn objects_are_clustered_not_uniform() {
        // Chi-square-ish check: split the space into a 10x10 grid; the
        // occupancy variance of a clustered distribution is far above the
        // uniform expectation.
        let d = Dataset::generate(DatasetKind::Mainland, Scale::Small, 17);
        let mut counts = [0usize; 100];
        for it in d.items() {
            let c = it.mbr.center();
            let gx = (c.x * 10.0).min(9.0) as usize;
            let gy = (c.y * 10.0).min(9.0) as usize;
            counts[gy * 10 + gx] += 1;
        }
        let n = d.items().len() as f64;
        let mean = n / 100.0;
        let var: f64 = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / 100.0;
        // Uniform data would have var ≈ mean (Poisson); clusters inflate it.
        assert!(var > 4.0 * mean, "variance {var} vs mean {mean}");
    }

    #[test]
    fn extended_objects_are_small_relative_to_space() {
        let d = Dataset::generate(DatasetKind::World, Scale::Tiny, 23);
        for it in d.items() {
            assert!(it.mbr.width() < 0.15, "object too wide: {:?}", it.mbr);
            assert!(it.mbr.height() < 0.15);
        }
    }
}
