//! # asb-workload — synthetic datasets and query sets
//!
//! The EDBT 2002 evaluation uses two geographic databases and five families
//! of query distributions. The original data (USGS/GNIS features, a
//! commercial world atlas, a US places file) is not redistributable, so this
//! crate generates *synthetic equivalents that preserve the properties the
//! paper's analysis leans on*:
//!
//! * [`DatasetKind::Mainland`] (database 1): clustered points and small
//!   extended objects inside an irregular continent outline with empty
//!   "ocean" all around — so queries hitting the margin terminate high in
//!   the tree, and population clusters create the skew the intensified
//!   distribution exploits.
//! * [`DatasetKind::World`] (database 2): line and area features in several
//!   continent-shaped clusters covering roughly a third of the data space —
//!   so the x-flipped *independent* query set mostly hits water, the effect
//!   the paper highlights for its Figure 9.
//! * A places list ([`Dataset::places`]) with Zipf-distributed populations,
//!   correlated with the object clusters, backing the *similar* and
//!   *intensified* query sets.
//!
//! All generation is deterministic given a `u64` seed. The query-set
//! families match Section 3.1 of the paper exactly; see [`QuerySetSpec`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod phases;
mod queryset;
mod requests;
mod trajectory;

pub use dataset::{Dataset, DatasetKind, Place, Scale};
pub use phases::PhasedWorkload;
pub use queryset::{Distribution, QueryKind, QuerySetSpec};
pub use requests::{session_requests, Request, RequestMix};
pub use trajectory::{session, SessionSpec};
