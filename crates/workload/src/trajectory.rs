//! Interactive map-session trajectories: the access pattern the paper's
//! introduction motivates ("spatial applications have become more
//! sophisticated").
//!
//! A session is a sequence of viewport windows produced by a user panning,
//! zooming and occasionally jumping to a searched place. Adjacent viewports
//! overlap strongly (high page locality); jumps reset locality — exactly
//! the mix that separates replacement policies.

use crate::dataset::Dataset;
use asb_geom::{Point, Query, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a [`session`] trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Probability per step of jumping to a random place (search).
    pub jump_probability: f64,
    /// Probability per step of zooming in or out one notch.
    pub zoom_probability: f64,
    /// Initial viewport half-width, as a fraction of the data space.
    pub initial_half: f64,
    /// Smallest permitted viewport half-width.
    pub min_half: f64,
    /// Largest permitted viewport half-width.
    pub max_half: f64,
    /// Pan step relative to the viewport size.
    pub pan_step: f64,
}

impl Default for SessionSpec {
    fn default() -> Self {
        SessionSpec {
            jump_probability: 0.08,
            zoom_probability: 0.17,
            initial_half: 0.02,
            min_half: 0.005,
            max_half: 0.08,
            pan_step: 0.8,
        }
    }
}

impl SessionSpec {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.jump_probability)
            || !(0.0..=1.0).contains(&self.zoom_probability)
        {
            return Err("probabilities must be in [0, 1]".into());
        }
        if self.jump_probability + self.zoom_probability > 1.0 {
            return Err("jump + zoom probability must not exceed 1".into());
        }
        if !(self.min_half > 0.0
            && self.min_half <= self.initial_half
            && self.initial_half <= self.max_half)
        {
            return Err("half-width bounds must satisfy 0 < min <= initial <= max".into());
        }
        Ok(())
    }
}

/// Generates a deterministic pan/zoom/jump session of `steps` viewport
/// queries against `dataset`.
///
/// # Panics
/// Panics if `spec` is invalid (see [`SessionSpec::validate`]) or the
/// dataset has no places to jump to.
pub fn session(dataset: &Dataset, spec: SessionSpec, steps: usize, seed: u64) -> Vec<Query> {
    spec.validate().expect("valid session spec");
    let places = dataset.places();
    assert!(!places.is_empty(), "sessions need places to jump to");
    let bounds = dataset.bounds();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x007A_11E7);
    let mut center = places[0].location;
    let mut half = spec.initial_half;
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        let action: f64 = rng.gen();
        if action < spec.jump_probability {
            center = places[rng.gen_range(0..places.len())].location;
        } else if action < spec.jump_probability + spec.zoom_probability {
            half = (half * if rng.gen::<bool>() { 0.5 } else { 2.0 })
                .clamp(spec.min_half, spec.max_half);
        } else {
            center = Point::new(
                (center.x + (rng.gen::<f64>() - 0.5) * half * 2.0 * spec.pan_step)
                    .clamp(bounds.min.x, bounds.max.x),
                (center.y + (rng.gen::<f64>() - 0.5) * half * 2.0 * spec.pan_step)
                    .clamp(bounds.min.y, bounds.max.y),
            );
        }
        out.push(Query::Window(Rect::centered_square(center, half)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetKind, Scale};

    fn dataset() -> Dataset {
        Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 42)
    }

    #[test]
    fn sessions_are_deterministic() {
        let d = dataset();
        let a = session(&d, SessionSpec::default(), 200, 1);
        let b = session(&d, SessionSpec::default(), 200, 1);
        assert_eq!(a, b);
        assert_ne!(a, session(&d, SessionSpec::default(), 200, 2));
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn viewports_respect_size_bounds() {
        let d = dataset();
        let spec = SessionSpec::default();
        for q in session(&d, spec, 500, 7) {
            let Query::Window(w) = q else {
                panic!("sessions emit windows")
            };
            let half = w.width() / 2.0;
            assert!(half >= spec.min_half - 1e-12 && half <= spec.max_half + 1e-12);
        }
    }

    #[test]
    fn adjacent_viewports_mostly_overlap() {
        let d = dataset();
        let queries = session(&d, SessionSpec::default(), 400, 5);
        let mut overlapping = 0usize;
        for w in queries.windows(2) {
            let (Query::Window(a), Query::Window(b)) = (&w[0], &w[1]) else {
                panic!()
            };
            if a.intersects(b) {
                overlapping += 1;
            }
        }
        let frac = overlapping as f64 / (queries.len() - 1) as f64;
        assert!(
            frac > 0.7,
            "pan/zoom sessions should have high locality ({frac:.2})"
        );
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let spec = SessionSpec {
            jump_probability: 0.9,
            zoom_probability: 0.5,
            ..SessionSpec::default()
        };
        assert!(spec.validate().is_err());
        let spec = SessionSpec {
            min_half: 0.5,
            ..SessionSpec::default()
        };
        assert!(spec.validate().is_err());
    }
}
