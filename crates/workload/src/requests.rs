//! Multi-session serving request streams: the workload behind `asb-serve`.
//!
//! A serving front end does not see raw page accesses — it sees *requests*:
//! a map client panning and zooming issues viewport window queries, a
//! search box issues k-nearest-neighbour lookups around the viewport
//! centre, and an analytical overlay ("show conflicting permits here")
//! issues window-restricted spatial self-joins. [`session_requests`] turns
//! the pan/zoom/jump trajectory of [`session`](crate::session) into such a
//! request stream: every step keeps the trajectory's viewport (so the page
//! locality that separates replacement policies is preserved) and a seeded
//! draw picks which request kind the step issues.

use crate::dataset::Dataset;
use crate::trajectory::{session, SessionSpec};
use asb_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One request a simulated session submits to the serving front end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// All objects intersecting the viewport window.
    Window(Rect),
    /// The `k` objects nearest to a point (viewport centre).
    Nearest(Point, usize),
    /// Count of intersecting object pairs within the window (a
    /// window-restricted spatial self-join).
    Join(Rect),
}

impl Request {
    /// Short label for logs and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Window(_) => "window",
            Request::Nearest(..) => "nearest",
            Request::Join(_) => "join",
        }
    }
}

/// Relative weights of the request kinds a session issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestMix {
    /// Weight of viewport window queries.
    pub window: u32,
    /// Weight of k-nearest-neighbour lookups.
    pub nearest: u32,
    /// Weight of window-restricted spatial self-joins.
    pub join: u32,
}

impl RequestMix {
    /// The default interactive-browsing mix: mostly viewport windows,
    /// some nearest-neighbour searches, occasional join overlays.
    pub fn browsing() -> Self {
        RequestMix {
            window: 6,
            nearest: 3,
            join: 1,
        }
    }

    /// Windows only (the trajectory of [`session`](crate::session) verbatim).
    pub fn windows_only() -> Self {
        RequestMix {
            window: 1,
            nearest: 0,
            join: 0,
        }
    }

    fn total(&self) -> u32 {
        self.window + self.nearest + self.join
    }

    /// Validates that at least one kind has weight.
    pub fn validate(&self) -> Result<(), String> {
        if self.total() == 0 {
            return Err("request mix needs at least one non-zero weight".into());
        }
        Ok(())
    }
}

impl Default for RequestMix {
    fn default() -> Self {
        RequestMix::browsing()
    }
}

/// Generates a deterministic request stream of `steps` requests for one
/// session: the viewport trajectory of [`session`](crate::session) with
/// each step's request kind drawn from `mix`.
///
/// Nearest-neighbour requests search around the viewport centre with
/// `k ∈ [4, 16]`; join requests shrink the viewport to half its size (the
/// overlay pane). Two calls with equal inputs return equal streams.
///
/// # Panics
/// Panics if `spec` or `mix` is invalid or the dataset has no places.
pub fn session_requests(
    dataset: &Dataset,
    spec: SessionSpec,
    mix: RequestMix,
    steps: usize,
    seed: u64,
) -> Vec<Request> {
    mix.validate().expect("valid request mix");
    let windows = session(dataset, spec, steps, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E55_1095);
    windows
        .into_iter()
        .map(|q| {
            let viewport = q.region();
            let draw = rng.gen_range(0..mix.total());
            if draw < mix.window {
                Request::Window(viewport)
            } else if draw < mix.window + mix.nearest {
                let k = rng.gen_range(4..=16usize);
                Request::Nearest(viewport.center(), k)
            } else {
                let half = (viewport.width() / 4.0).max(f64::MIN_POSITIVE);
                Request::Join(Rect::centered_square(viewport.center(), half))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetKind, Scale};

    fn dataset() -> Dataset {
        Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 42)
    }

    #[test]
    fn request_streams_are_deterministic() {
        let d = dataset();
        let mix = RequestMix::browsing();
        let a = session_requests(&d, SessionSpec::default(), mix, 300, 9);
        let b = session_requests(&d, SessionSpec::default(), mix, 300, 9);
        assert_eq!(a, b);
        assert_ne!(
            a,
            session_requests(&d, SessionSpec::default(), mix, 300, 10)
        );
        assert_eq!(a.len(), 300);
    }

    #[test]
    fn browsing_mix_produces_every_kind() {
        let d = dataset();
        let reqs = session_requests(&d, SessionSpec::default(), RequestMix::browsing(), 500, 3);
        for kind in ["window", "nearest", "join"] {
            assert!(
                reqs.iter().any(|r| r.kind() == kind),
                "mix should produce {kind} requests"
            );
        }
    }

    #[test]
    fn windows_only_mix_matches_the_raw_trajectory() {
        let d = dataset();
        let spec = SessionSpec::default();
        let reqs = session_requests(&d, spec, RequestMix::windows_only(), 100, 5);
        let windows = session(&d, spec, 100, 5);
        for (r, q) in reqs.iter().zip(&windows) {
            assert_eq!(*r, Request::Window(q.region()));
        }
    }

    #[test]
    fn empty_mix_is_rejected() {
        let mix = RequestMix {
            window: 0,
            nearest: 0,
            join: 0,
        };
        assert!(mix.validate().is_err());
    }
}
