//! Adversarial phase-change workloads.
//!
//! The paper's query sets are *stationary*: one distribution family per
//! run, so a policy tuned for that family never pays for its bias. A
//! phase-change workload concatenates several families back to back —
//! every boundary invalidates whatever regularity the previous phase
//! rewarded (spatial locality, reference skew, scan order), which is
//! exactly the regime a regret-minimizing policy mixer must survive: the
//! best expert *in hindsight* changes identity mid-trace.

use crate::dataset::Dataset;
use crate::queryset::{QueryKind, QuerySetSpec};
use asb_geom::Query;
use serde::{Deserialize, Serialize};

/// A named concatenation of query-set phases.
///
/// Each phase is a `(spec, queries)` pair; [`PhasedWorkload::generate`]
/// materializes the phases in order against one dataset, deterministically
/// from a seed, and reports the phase boundaries so evaluations can
/// attribute misses to regimes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedWorkload {
    /// Display name, e.g. `"phase-change"`.
    pub name: String,
    /// The phases in execution order.
    pub phases: Vec<(QuerySetSpec, usize)>,
}

impl PhasedWorkload {
    /// The default adversarial workload: five phases that alternate
    /// between broad uniform scans, heavily skewed point access,
    /// object-identical windows and data-independent windows. Each
    /// boundary flips which page property predicts the next reuse, so no
    /// single fixed policy ranks victims well across the whole trace.
    pub fn adversarial(queries_per_phase: usize) -> Self {
        PhasedWorkload {
            name: "phase-change".into(),
            phases: vec![
                (QuerySetSpec::uniform_windows(33), queries_per_phase),
                (
                    QuerySetSpec::intensified(QueryKind::Point),
                    queries_per_phase,
                ),
                (QuerySetSpec::identical_windows(), queries_per_phase),
                (
                    QuerySetSpec::independent(QueryKind::Window { ex: 100 }),
                    queries_per_phase,
                ),
                (QuerySetSpec::uniform_points(), queries_per_phase),
            ],
        }
    }

    /// A two-regime thrash workload: skewed points, then uniform windows,
    /// then the skewed phase again — the classic loop that punishes
    /// policies which forget (pure recency) *and* policies which never
    /// forget (pure frequency/spatial bias).
    pub fn thrash(queries_per_phase: usize) -> Self {
        PhasedWorkload {
            name: "thrash".into(),
            phases: vec![
                (
                    QuerySetSpec::intensified(QueryKind::Point),
                    queries_per_phase,
                ),
                (QuerySetSpec::uniform_windows(33), queries_per_phase),
                (
                    QuerySetSpec::intensified(QueryKind::Point),
                    queries_per_phase,
                ),
            ],
        }
    }

    /// Total query count across all phases.
    pub fn total_queries(&self) -> usize {
        self.phases.iter().map(|&(_, n)| n).sum()
    }

    /// Query indices at which each phase *ends* (exclusive), cumulative.
    pub fn boundaries(&self) -> Vec<usize> {
        let mut acc = 0;
        self.phases
            .iter()
            .map(|&(_, n)| {
                acc += n;
                acc
            })
            .collect()
    }

    /// Materializes the workload against `dataset`. Every phase draws
    /// from its own derived seed (`seed` xor the phase index), so phases
    /// of the same family in different positions differ, yet the whole
    /// trace is reproducible from one seed.
    pub fn generate(&self, dataset: &Dataset, seed: u64) -> Vec<Query> {
        let mut queries = Vec::with_capacity(self.total_queries());
        for (i, &(spec, n)) in self.phases.iter().enumerate() {
            queries.extend(spec.generate(dataset, n, seed ^ (i as u64).wrapping_mul(0x9E37_79B9)));
        }
        queries
    }

    /// A provenance label naming every phase, e.g.
    /// `"phase-change[U-W-33+INT-P+ID-W+IND-W-100+U-P]"`.
    pub fn label(&self) -> String {
        let names: Vec<String> = self.phases.iter().map(|(s, _)| s.name()).collect();
        format!("{}[{}]", self.name, names.join("+"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetKind, Scale};

    #[test]
    fn generation_is_deterministic_and_sized() {
        let d = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 42);
        let w = PhasedWorkload::adversarial(20);
        assert_eq!(w.total_queries(), 100);
        assert_eq!(w.boundaries(), vec![20, 40, 60, 80, 100]);
        let a = w.generate(&d, 7);
        let b = w.generate(&d, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert_ne!(a, w.generate(&d, 8));
    }

    #[test]
    fn labels_name_every_phase() {
        assert_eq!(
            PhasedWorkload::adversarial(10).label(),
            "phase-change[U-W-33+INT-P+ID-W+IND-W-100+U-P]"
        );
        assert_eq!(
            PhasedWorkload::thrash(10).label(),
            "thrash[INT-P+U-W-33+INT-P]"
        );
    }

    #[test]
    fn repeated_phases_draw_distinct_queries() {
        let d = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 42);
        let w = PhasedWorkload::thrash(30);
        let qs = w.generate(&d, 3);
        // Phase 0 and phase 2 share a spec but not a derived seed.
        assert_ne!(qs[0..30], qs[60..90]);
    }
}
