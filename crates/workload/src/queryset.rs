//! The paper's query-set families (Section 3.1).

use crate::dataset::Dataset;
use asb_geom::{Point, Query, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Point queries or window queries of a given relative extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryKind {
    /// Point queries.
    Point,
    /// Window queries; `ex` is "the reciprocal value of the extension of
    /// the query windows in one dimension": the window's x-extension is
    /// `1/ex` of the data space's x-extension (same for y). The paper uses
    /// ex ∈ {33, 100, 333, 1000}.
    Window {
        /// Reciprocal window extent.
        ex: u32,
    },
    /// Windows that keep the size of the selected database object
    /// (only used by the *identical* distribution's `ID-W` set).
    ObjectWindow,
}

/// The five distribution families of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Distribution {
    /// `U-*`: query anchors uniform over the whole data space, including
    /// parts storing no objects.
    Uniform,
    /// `ID-*`: a random selection of objects stored in the database.
    Identical,
    /// `S-*`: random places (cities/towns) — functionally dependent on the
    /// data, like combining two layers of a map.
    Similar,
    /// `INT-*`: places weighted by the square root of their population.
    Intensified,
    /// `IND-*`: like similar, but with x-coordinates flipped, making query
    /// and data distributions independent.
    Independent,
}

impl Distribution {
    /// Paper prefix ("U", "ID", "S", "INT", "IND").
    pub fn prefix(&self) -> &'static str {
        match self {
            Distribution::Uniform => "U",
            Distribution::Identical => "ID",
            Distribution::Similar => "S",
            Distribution::Intensified => "INT",
            Distribution::Independent => "IND",
        }
    }
}

/// A query-set specification: distribution × query kind.
///
/// `generate` materializes the set deterministically from a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuerySetSpec {
    /// The anchor distribution.
    pub dist: Distribution,
    /// Point or window queries.
    pub kind: QueryKind,
}

impl QuerySetSpec {
    /// `U-P`: uniformly distributed point queries.
    pub fn uniform_points() -> Self {
        QuerySetSpec {
            dist: Distribution::Uniform,
            kind: QueryKind::Point,
        }
    }

    /// `U-W-ex`: uniformly distributed window queries.
    pub fn uniform_windows(ex: u32) -> Self {
        QuerySetSpec {
            dist: Distribution::Uniform,
            kind: QueryKind::Window { ex },
        }
    }

    /// `ID-P`: point queries at stored objects.
    pub fn identical_points() -> Self {
        QuerySetSpec {
            dist: Distribution::Identical,
            kind: QueryKind::Point,
        }
    }

    /// `ID-W`: window queries that are stored objects' MBRs.
    pub fn identical_windows() -> Self {
        QuerySetSpec {
            dist: Distribution::Identical,
            kind: QueryKind::ObjectWindow,
        }
    }

    /// `S-P` / `S-W-ex`.
    pub fn similar(kind: QueryKind) -> Self {
        QuerySetSpec {
            dist: Distribution::Similar,
            kind,
        }
    }

    /// `INT-P` / `INT-W-ex`.
    pub fn intensified(kind: QueryKind) -> Self {
        QuerySetSpec {
            dist: Distribution::Intensified,
            kind,
        }
    }

    /// `IND-P` / `IND-W-ex`.
    pub fn independent(kind: QueryKind) -> Self {
        QuerySetSpec {
            dist: Distribution::Independent,
            kind,
        }
    }

    /// The paper's name for the set, e.g. `"U-W-33"`, `"INT-P"`, `"ID-W"`.
    pub fn name(&self) -> String {
        match self.kind {
            QueryKind::Point => format!("{}-P", self.dist.prefix()),
            QueryKind::Window { ex } => format!("{}-W-{}", self.dist.prefix(), ex),
            QueryKind::ObjectWindow => format!("{}-W", self.dist.prefix()),
        }
    }

    /// Generates `count` queries against `dataset`, deterministically from
    /// `seed`.
    pub fn generate(&self, dataset: &Dataset, count: usize, seed: u64) -> Vec<Query> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51ED_2702_0000_0000);
        let bounds = dataset.bounds();
        let mut queries = Vec::with_capacity(count);
        for _ in 0..count {
            queries.push(self.generate_one(dataset, &bounds, &mut rng));
        }
        queries
    }

    fn generate_one(&self, dataset: &Dataset, bounds: &Rect, rng: &mut StdRng) -> Query {
        let anchor = match self.dist {
            Distribution::Uniform => Point::new(
                bounds.min.x + rng.gen::<f64>() * bounds.width(),
                bounds.min.y + rng.gen::<f64>() * bounds.height(),
            ),
            Distribution::Identical => {
                let items = dataset.items();
                let it = items[rng.gen_range(0..items.len())];
                // For ID-W the object itself is the window (handled below);
                // for ID-P the anchor is the object's center.
                if self.kind == QueryKind::ObjectWindow {
                    return Query::Window(it.mbr);
                }
                it.mbr.center()
            }
            Distribution::Similar => {
                let places = dataset.places();
                places[rng.gen_range(0..places.len())].location
            }
            Distribution::Intensified => {
                // Rejection sampling proportional to sqrt(population).
                let places = dataset.places();
                let max_weight = places
                    .iter()
                    .map(|p| p.population.sqrt())
                    .fold(0.0_f64, f64::max);
                loop {
                    let p = &places[rng.gen_range(0..places.len())];
                    if rng.gen::<f64>() * max_weight <= p.population.sqrt() {
                        break p.location;
                    }
                }
            }
            Distribution::Independent => {
                let places = dataset.places();
                let p = places[rng.gen_range(0..places.len())].location;
                p.flip_x(bounds.min.x, bounds.max.x)
            }
        };
        match self.kind {
            QueryKind::Point => Query::Point(anchor),
            QueryKind::Window { ex } => {
                let w = bounds.width() / ex as f64;
                let h = bounds.height() / ex as f64;
                // Keep the window inside the data space (clamp the center).
                let cx = anchor
                    .x
                    .clamp(bounds.min.x + w / 2.0, bounds.max.x - w / 2.0);
                let cy = anchor
                    .y
                    .clamp(bounds.min.y + h / 2.0, bounds.max.y - h / 2.0);
                Query::Window(Rect::centered(Point::new(cx, cy), w, h))
            }
            QueryKind::ObjectWindow => {
                // Only reachable for non-Identical distributions if
                // misconfigured; degrade to a point query on the anchor.
                Query::Point(anchor)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetKind, Scale};

    fn dataset() -> Dataset {
        Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 42)
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(QuerySetSpec::uniform_points().name(), "U-P");
        assert_eq!(QuerySetSpec::uniform_windows(33).name(), "U-W-33");
        assert_eq!(QuerySetSpec::identical_windows().name(), "ID-W");
        assert_eq!(
            QuerySetSpec::intensified(QueryKind::Window { ex: 1000 }).name(),
            "INT-W-1000"
        );
        assert_eq!(QuerySetSpec::independent(QueryKind::Point).name(), "IND-P");
    }

    #[test]
    fn generation_is_deterministic() {
        let d = dataset();
        let a = QuerySetSpec::uniform_windows(100).generate(&d, 50, 7);
        let b = QuerySetSpec::uniform_windows(100).generate(&d, 50, 7);
        assert_eq!(a, b);
        let c = QuerySetSpec::uniform_windows(100).generate(&d, 50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn window_extent_is_one_over_ex() {
        let d = dataset();
        for q in QuerySetSpec::uniform_windows(33).generate(&d, 20, 3) {
            let Query::Window(w) = q else {
                panic!("expected windows")
            };
            assert!((w.width() - 1.0 / 33.0).abs() < 1e-12);
            assert!((w.height() - 1.0 / 33.0).abs() < 1e-12);
            assert!(d.bounds().contains(&w), "window must stay inside the space");
        }
    }

    #[test]
    fn identical_windows_are_object_mbrs() {
        let d = dataset();
        for q in QuerySetSpec::identical_windows().generate(&d, 50, 5) {
            let Query::Window(w) = q else {
                panic!("expected windows")
            };
            assert!(
                d.items().iter().any(|it| it.mbr == w),
                "window {w:?} is not a stored object"
            );
        }
    }

    #[test]
    fn identical_points_hit_objects() {
        let d = dataset();
        for q in QuerySetSpec::identical_points().generate(&d, 50, 5) {
            let Query::Point(p) = q else {
                panic!("expected points")
            };
            assert!(
                d.items().iter().any(|it| it.mbr.contains_point(&p)),
                "point {p:?} does not hit any object"
            );
        }
    }

    #[test]
    fn similar_queries_are_at_places() {
        let d = dataset();
        for q in QuerySetSpec::similar(QueryKind::Point).generate(&d, 30, 9) {
            let Query::Point(p) = q else { panic!() };
            assert!(d.places().iter().any(|pl| pl.location == p));
        }
    }

    #[test]
    fn intensified_is_more_skewed_than_similar() {
        let d = dataset();
        let n = 4000;
        let mut by_pop: Vec<_> = d.places().to_vec();
        by_pop.sort_by(|a, b| b.population.partial_cmp(&a.population).unwrap());
        let top_places: Vec<Point> = by_pop.iter().take(20).map(|p| p.location).collect();
        let count_top = |queries: &[Query]| {
            queries
                .iter()
                .filter(|q| {
                    let Query::Point(p) = q else { return false };
                    top_places.contains(p)
                })
                .count()
        };
        let similar = QuerySetSpec::similar(QueryKind::Point).generate(&d, n, 1);
        let intensified = QuerySetSpec::intensified(QueryKind::Point).generate(&d, n, 1);
        assert!(
            count_top(&intensified) > 2 * count_top(&similar),
            "intensified {} vs similar {}",
            count_top(&intensified),
            count_top(&similar)
        );
    }

    #[test]
    fn independent_queries_are_flipped_places() {
        let d = dataset();
        for q in QuerySetSpec::independent(QueryKind::Point).generate(&d, 30, 2) {
            let Query::Point(p) = q else { panic!() };
            let back = p.flip_x(0.0, 1.0);
            // Un-flipping is only exact up to floating-point rounding.
            assert!(d
                .places()
                .iter()
                .any(|pl| { (pl.location.x - back.x).abs() < 1e-12 && pl.location.y == back.y }));
        }
    }

    #[test]
    fn uniform_covers_empty_space_too() {
        // Some uniform anchors must fall outside the mainland (ocean).
        let d = dataset();
        let queries = QuerySetSpec::uniform_points().generate(&d, 500, 3);
        let misses = queries
            .iter()
            .filter(|q| {
                let Query::Point(p) = q else { return false };
                !d.items().iter().any(|it| it.mbr.min_dist(p) < 0.02)
            })
            .count();
        assert!(
            misses > 0,
            "uniform queries should also hit object-free areas"
        );
    }
}
