//! # asb-quadtree — a disk-based bucket quadtree
//!
//! The EDBT 2002 paper grounds its notion of "page entries" in three
//! structures: R-tree rectangles, **quadtree cells** ("in a quadtree, the
//! quadtree cells match these entries") and z-values in a B-tree. This
//! crate supplies the quadtree: a disk-based **bucket MX-CIF quadtree**
//! over the same paged storage and buffer stack as the R\*-tree, so every
//! replacement policy can be evaluated on a second, structurally different
//! spatial access method.
//!
//! Structure:
//!
//! * every quadtree node is a page chain (a primary page plus overflow
//!   continuation pages when a node's entry list outgrows one page — the
//!   classic fix for MX-CIF straddler lists);
//! * leaves hold objects; a leaf splits into four children when it
//!   overflows its bucket capacity (and the maximum depth is not reached);
//! * objects that do not fit entirely inside one child quadrant stay on the
//!   internal node (MX-CIF semantics), so no object is ever duplicated;
//! * pages carry [`PageMeta`](asb_storage::PageMeta) with
//!   [`SpatialStats`](asb_geom::SpatialStats) over the node's entries and a
//!   priority level that grows toward the root, exactly like the R\*-tree
//!   pages — the spatial replacement criteria apply unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod node;
mod tree;

pub use node::{QuadEntry, QuadNode, CHILDREN};
pub use tree::{QuadConfig, QuadTree, QuadTreeStats};
