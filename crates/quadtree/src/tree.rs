//! The disk-based bucket MX-CIF quadtree.

use crate::node::{containing_quadrant, quadrants, QuadEntry, QuadNode, CHILDREN, PAGE_CAPACITY};
use asb_core::{BufferManager, BufferStats};
use asb_geom::{Query, Rect, SpatialItem};
use asb_storage::{
    AccessContext, DiskManager, Page, PageId, PageStore, QueryId, Result, StorageError,
};

/// Structural parameters of a [`QuadTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuadConfig {
    /// Maximum depth of the quadtree (root = depth 0).
    pub max_depth: u8,
    /// Entries a leaf holds before it splits (defaults to one page's worth).
    pub bucket_capacity: usize,
}

impl Default for QuadConfig {
    fn default() -> Self {
        QuadConfig {
            max_depth: 12,
            bucket_capacity: PAGE_CAPACITY,
        }
    }
}

impl QuadConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.max_depth == 0 || self.max_depth > 24 {
            return Err("max_depth must be in 1..=24".into());
        }
        if self.bucket_capacity < 2 {
            return Err("bucket capacity must be at least 2".into());
        }
        Ok(())
    }
}

/// Structural statistics of a quadtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuadTreeStats {
    /// Primary pages of internal nodes.
    pub internal_nodes: usize,
    /// Primary pages of leaves.
    pub leaf_nodes: usize,
    /// Continuation (overflow-chain) pages.
    pub chain_pages: usize,
    /// Deepest populated level.
    pub max_depth_used: u8,
    /// Stored objects.
    pub objects: usize,
}

impl QuadTreeStats {
    /// Total pages.
    pub fn total_pages(&self) -> usize {
        self.internal_nodes + self.leaf_nodes + self.chain_pages
    }
}

/// A disk-based bucket MX-CIF quadtree over any [`PageStore`], optionally
/// reading through a [`BufferManager`] — the same measurement stack as the
/// R\*-tree.
///
/// ```
/// use asb_geom::{Rect, SpatialItem};
/// use asb_quadtree::QuadTree;
/// use asb_storage::DiskManager;
///
/// let bounds = Rect::new(0.0, 0.0, 100.0, 100.0);
/// let mut tree = QuadTree::new(DiskManager::new(), bounds).unwrap();
/// tree.insert(SpatialItem::new(1, Rect::new(10.0, 10.0, 12.0, 12.0))).unwrap();
/// tree.insert(SpatialItem::new(2, Rect::new(80.0, 80.0, 81.0, 81.0))).unwrap();
///
/// let hits = tree.window_query(Rect::new(0.0, 0.0, 50.0, 50.0)).unwrap();
/// assert_eq!(hits, vec![1]);
/// ```
pub struct QuadTree<S: PageStore = DiskManager> {
    store: S,
    buffer: Option<BufferManager>,
    config: QuadConfig,
    bounds: Rect,
    root: PageId,
    len: usize,
    next_query: u64,
}

impl<S: PageStore> std::fmt::Debug for QuadTree<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuadTree")
            .field("root", &self.root)
            .field("len", &self.len)
            .field("bounds", &self.bounds)
            .finish()
    }
}

impl<S: PageStore> QuadTree<S> {
    /// Creates an empty quadtree over the data space `bounds`.
    pub fn new(store: S, bounds: Rect) -> Result<Self> {
        Self::with_config(store, bounds, QuadConfig::default())
    }

    /// Creates an empty quadtree with a custom configuration.
    pub fn with_config(mut store: S, bounds: Rect, config: QuadConfig) -> Result<Self> {
        config.validate().map_err(|reason| StorageError::Corrupt {
            id: PageId::new(0),
            reason,
        })?;
        if !(bounds.width() > 0.0 && bounds.height() > 0.0) {
            return Err(StorageError::Corrupt {
                id: PageId::new(0),
                reason: "quadtree bounds must have positive extent".into(),
            });
        }
        let root_node = QuadNode::new_leaf(0);
        let root = store.allocate(root_node.page_meta(config.max_depth), root_node.encode())?;
        Ok(QuadTree {
            store,
            buffer: None,
            config,
            bounds,
            root,
            len: 0,
            next_query: 0,
        })
    }

    /// Bulk construction by repeated insertion (the quadtree's shape is
    /// insertion-order independent for fixed data, unlike the R-tree's).
    pub fn build(store: S, bounds: Rect, items: &[SpatialItem]) -> Result<Self> {
        let mut tree = Self::new(store, bounds)?;
        for it in items {
            tree.insert(*it)?;
        }
        Ok(tree)
    }

    /// Attaches (or replaces) the buffer.
    pub fn set_buffer(&mut self, buffer: BufferManager) {
        self.buffer = Some(buffer);
    }

    /// Detaches and returns the buffer.
    pub fn take_buffer(&mut self) -> Option<BufferManager> {
        self.buffer.take()
    }

    /// Buffer statistics, if attached.
    pub fn buffer_stats(&self) -> Option<BufferStats> {
        self.buffer.as_ref().map(|b| b.stats())
    }

    /// The backing store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the backing store.
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Live pages in the backing store.
    pub fn page_count(&self) -> usize {
        self.store.page_count()
    }

    /// Stored objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The data space.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    // ---- page I/O ------------------------------------------------------

    fn ctx(&self) -> AccessContext {
        AccessContext::query(QueryId::new(self.next_query))
    }

    fn read_node(&mut self, id: PageId) -> Result<QuadNode> {
        let ctx = self.ctx();
        match &mut self.buffer {
            Some(buf) => {
                // The guard pins the frame only for the decode; it derefs
                // to the page.
                let page = buf.fetch(&mut self.store, id, ctx)?;
                QuadNode::decode(&page)
            }
            None => QuadNode::decode(&self.store.read(id, ctx)?),
        }
    }

    fn write_node(&mut self, id: PageId, node: &QuadNode) -> Result<()> {
        let page = Page::new(id, node.page_meta(self.config.max_depth), node.encode())?;
        match &mut self.buffer {
            Some(buf) => buf.write_through(&mut self.store, page),
            None => self.store.write(page),
        }
    }

    fn alloc_node(&mut self, node: &QuadNode) -> Result<PageId> {
        match &mut self.buffer {
            Some(buf) => buf.allocate_through(
                &mut self.store,
                node.page_meta(self.config.max_depth),
                node.encode(),
            ),
            None => self
                .store
                .allocate(node.page_meta(self.config.max_depth), node.encode()),
        }
    }

    fn free_node(&mut self, id: PageId) -> Result<()> {
        match &mut self.buffer {
            Some(buf) => buf.free_through(&mut self.store, id),
            None => self.store.free(id),
        }
    }

    /// Reads a node's full entry list (primary + continuation pages) and
    /// the chain's page ids after the primary.
    fn read_chain(&mut self, primary: PageId) -> Result<(QuadNode, Vec<QuadEntry>, Vec<PageId>)> {
        let head = self.read_node(primary)?;
        let mut entries = head.entries.clone();
        let mut chain = Vec::new();
        let mut next = head.next;
        while let Some(id) = next {
            let cont = self.read_node(id)?;
            entries.extend_from_slice(&cont.entries);
            next = cont.next;
            chain.push(id);
        }
        Ok((head, entries, chain))
    }

    /// Rewrites a node's entry list, reusing / extending / shrinking the
    /// continuation chain as needed.
    fn write_chain(
        &mut self,
        primary: PageId,
        depth: u8,
        children: [Option<PageId>; CHILDREN],
        entries: &[QuadEntry],
        old_chain: &[PageId],
    ) -> Result<()> {
        let mut chunks: Vec<&[QuadEntry]> = entries.chunks(PAGE_CAPACITY).collect();
        if chunks.is_empty() {
            chunks.push(&[]);
        }
        let needed = chunks.len() - 1;
        // Allocate any additional chain pages first (so links can be set).
        let mut chain: Vec<PageId> = old_chain[..old_chain.len().min(needed)].to_vec();
        while chain.len() < needed {
            let placeholder = QuadNode::new_leaf(depth);
            chain.push(self.alloc_node(&placeholder)?);
        }
        for &surplus in &old_chain[old_chain.len().min(needed)..] {
            self.free_node(surplus)?;
        }
        // Primary page.
        let head = QuadNode {
            depth,
            children,
            next: chain.first().copied(),
            entries: chunks[0].to_vec(),
        };
        self.write_node(primary, &head)?;
        // Continuation pages (no children).
        for (i, chunk) in chunks[1..].iter().enumerate() {
            let cont = QuadNode {
                depth,
                children: [None; CHILDREN],
                next: chain.get(i + 1).copied(),
                entries: chunk.to_vec(),
            };
            self.write_node(chain[i], &cont)?;
        }
        Ok(())
    }

    // ---- updates ---------------------------------------------------------

    /// Inserts an object. The object's MBR must lie inside the tree bounds.
    pub fn insert(&mut self, item: SpatialItem) -> Result<()> {
        if !self.bounds.contains(&item.mbr) {
            return Err(StorageError::Corrupt {
                id: self.root,
                reason: format!("object {} outside the quadtree bounds", item.id),
            });
        }
        self.next_query += 1;
        let entry = QuadEntry {
            mbr: item.mbr,
            object_id: item.id,
        };
        let mut node_id = self.root;
        let mut cell = self.bounds;
        let mut depth = 0u8;
        loop {
            let node = self.read_node(node_id)?;
            if node.is_internal() {
                match containing_quadrant(&cell, &entry.mbr) {
                    Some(q) => {
                        let quad_cell = quadrants(&cell)[q];
                        match node.children[q] {
                            Some(child) => {
                                node_id = child;
                                cell = quad_cell;
                                depth += 1;
                            }
                            None => {
                                // Create the missing child leaf and place
                                // the entry there.
                                let child_node = QuadNode {
                                    depth: depth + 1,
                                    children: [None; CHILDREN],
                                    next: None,
                                    entries: vec![entry],
                                };
                                let child = self.alloc_node(&child_node)?;
                                let mut head = node;
                                head.children[q] = Some(child);
                                self.write_node(node_id, &head)?;
                                break;
                            }
                        }
                    }
                    None => {
                        // Straddler: stays on this internal node.
                        let (head, mut entries, chain) = self.read_chain(node_id)?;
                        entries.push(entry);
                        self.write_chain(node_id, depth, head.children, &entries, &chain)?;
                        break;
                    }
                }
            } else {
                // Leaf: append; split on overflow.
                let (_, mut entries, chain) = self.read_chain(node_id)?;
                entries.push(entry);
                if entries.len() > self.config.bucket_capacity && depth < self.config.max_depth {
                    self.split(node_id, cell, depth, entries, &chain)?;
                } else {
                    self.write_chain(node_id, depth, [None; CHILDREN], &entries, &chain)?;
                }
                break;
            }
        }
        self.len += 1;
        Ok(())
    }

    /// Splits an overfull leaf: entries fitting entirely in a quadrant move
    /// into (recursively built) child subtrees; straddlers stay local.
    fn split(
        &mut self,
        node_id: PageId,
        cell: Rect,
        depth: u8,
        entries: Vec<QuadEntry>,
        old_chain: &[PageId],
    ) -> Result<()> {
        let quads = quadrants(&cell);
        let mut groups: [Vec<QuadEntry>; CHILDREN] = Default::default();
        let mut local = Vec::new();
        for e in entries {
            match containing_quadrant(&cell, &e.mbr) {
                Some(q) => groups[q].push(e),
                None => local.push(e),
            }
        }
        let mut children = [None; CHILDREN];
        for (q, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            children[q] = Some(self.build_subtree(quads[q], depth + 1, group)?);
        }
        if children.iter().all(|c| c.is_none()) {
            // Every entry straddles: splitting gains nothing; keep the node
            // a (chained) leaf to avoid an internal node without children.
            self.write_chain(node_id, depth, [None; CHILDREN], &local, old_chain)?;
            return Ok(());
        }
        self.write_chain(node_id, depth, children, &local, old_chain)?;
        Ok(())
    }

    /// Builds a fresh subtree for `entries` within `cell`.
    fn build_subtree(&mut self, cell: Rect, depth: u8, entries: Vec<QuadEntry>) -> Result<PageId> {
        if entries.len() <= self.config.bucket_capacity || depth >= self.config.max_depth {
            let node_id = self.alloc_node(&QuadNode::new_leaf(depth))?;
            self.write_chain(node_id, depth, [None; CHILDREN], &entries, &[])?;
            return Ok(node_id);
        }
        let quads = quadrants(&cell);
        let mut groups: [Vec<QuadEntry>; CHILDREN] = Default::default();
        let mut local = Vec::new();
        for e in entries {
            match containing_quadrant(&cell, &e.mbr) {
                Some(q) => groups[q].push(e),
                None => local.push(e),
            }
        }
        let mut children = [None; CHILDREN];
        for (q, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            // A quadrant absorbing everything recurses only until
            // max_depth, which the base case above handles.
            children[q] = Some(self.build_subtree(quads[q], depth + 1, group)?);
        }
        // If every entry straddles the center lines, `children` stays empty
        // and the node is simply a (possibly chained) leaf.
        let node_id = self.alloc_node(&QuadNode::new_leaf(depth))?;
        self.write_chain(node_id, depth, children, &local, &[])?;
        Ok(node_id)
    }

    /// Removes the object `(id, mbr)`. Returns `true` if it was found.
    ///
    /// Emptied nodes are not merged back (the standard MX-CIF trade-off);
    /// chains shrink as entries leave.
    pub fn delete(&mut self, id: u64, mbr: &Rect) -> Result<bool> {
        self.next_query += 1;
        let mut node_id = self.root;
        let mut cell = self.bounds;
        let mut depth = 0u8;
        loop {
            let node = self.read_node(node_id)?;
            let descend = if node.is_internal() {
                containing_quadrant(&cell, mbr)
            } else {
                None
            };
            match descend {
                Some(q) => match node.children[q] {
                    Some(child) => {
                        cell = quadrants(&cell)[q];
                        node_id = child;
                        depth += 1;
                    }
                    None => return Ok(false),
                },
                None => {
                    let (head, mut entries, chain) = self.read_chain(node_id)?;
                    let Some(pos) = entries
                        .iter()
                        .position(|e| e.object_id == id && e.mbr == *mbr)
                    else {
                        return Ok(false);
                    };
                    entries.remove(pos);
                    self.write_chain(node_id, depth, head.children, &entries, &chain)?;
                    self.len -= 1;
                    return Ok(true);
                }
            }
        }
    }

    // ---- queries ---------------------------------------------------------

    /// Executes a point or window query.
    pub fn execute(&mut self, query: &Query) -> Result<Vec<u64>> {
        self.next_query += 1;
        let region = query.region();
        let mut results = Vec::new();
        let mut stack = vec![(self.root, self.bounds)];
        while let Some((id, cell)) = stack.pop() {
            if !cell.intersects(&region) {
                continue;
            }
            // Walk the whole chain of this node.
            let mut page = Some(id);
            let mut head_children = [None; CHILDREN];
            let mut first = true;
            while let Some(pid) = page {
                let node = self.read_node(pid)?;
                for e in &node.entries {
                    if query.matches(&e.mbr) {
                        results.push(e.object_id);
                    }
                }
                if first {
                    head_children = node.children;
                    first = false;
                }
                page = node.next;
            }
            let quads = quadrants(&cell);
            for (q, child) in head_children.iter().enumerate() {
                if let Some(c) = child {
                    stack.push((*c, quads[q]));
                }
            }
        }
        Ok(results)
    }

    /// Window query: all objects whose MBR intersects `window`.
    pub fn window_query(&mut self, window: Rect) -> Result<Vec<u64>> {
        self.execute(&Query::Window(window))
    }

    /// Traverses the tree and returns structural statistics.
    pub fn stats(&mut self) -> Result<QuadTreeStats> {
        self.next_query += 1;
        let mut stats = QuadTreeStats {
            internal_nodes: 0,
            leaf_nodes: 0,
            chain_pages: 0,
            max_depth_used: 0,
            objects: 0,
        };
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = self.read_node(id)?;
            stats.max_depth_used = stats.max_depth_used.max(node.depth);
            stats.objects += node.entries.len();
            if node.is_internal() {
                stats.internal_nodes += 1;
            } else {
                stats.leaf_nodes += 1;
            }
            let mut next = node.next;
            while let Some(cont_id) = next {
                let cont = self.read_node(cont_id)?;
                stats.chain_pages += 1;
                stats.objects += cont.entries.len();
                next = cont.next;
            }
            stack.extend(node.children.iter().flatten().copied());
        }
        Ok(stats)
    }

    /// Checks the structural invariants: every entry lies inside its node's
    /// cell; entries on internal nodes straddle their center lines; depths
    /// are consistent; the object count matches.
    pub fn validate(&mut self) -> Result<()> {
        self.next_query += 1;
        let corrupt = |id: PageId, reason: String| StorageError::Corrupt { id, reason };
        let mut objects = 0usize;
        let mut stack = vec![(self.root, self.bounds, 0u8)];
        while let Some((id, cell, depth)) = stack.pop() {
            let node = self.read_node(id)?;
            if node.depth != depth {
                return Err(corrupt(
                    id,
                    format!("depth {} != expected {depth}", node.depth),
                ));
            }
            if depth > self.config.max_depth {
                return Err(corrupt(id, "node below max depth".into()));
            }
            let internal = node.is_internal();
            // Gather the whole chain.
            let mut chain_entries = node.entries.clone();
            let mut next = node.next;
            while let Some(cont_id) = next {
                let cont = self.read_node(cont_id)?;
                if cont.is_internal() {
                    return Err(corrupt(cont_id, "continuation page with children".into()));
                }
                if cont.entries.len() > PAGE_CAPACITY {
                    return Err(corrupt(cont_id, "overfull page".into()));
                }
                chain_entries.extend_from_slice(&cont.entries);
                next = cont.next;
            }
            for e in &chain_entries {
                if !cell.contains(&e.mbr) {
                    return Err(corrupt(
                        id,
                        format!("entry {} outside its cell", e.object_id),
                    ));
                }
                if internal && containing_quadrant(&cell, &e.mbr).is_some() {
                    return Err(corrupt(
                        id,
                        format!("entry {} on an internal node but fits a child", e.object_id),
                    ));
                }
            }
            objects += chain_entries.len();
            let quads = quadrants(&cell);
            for (q, child) in node.children.iter().enumerate() {
                if let Some(c) = child {
                    stack.push((*c, quads[q], depth + 1));
                }
            }
        }
        if objects != self.len {
            return Err(corrupt(
                self.root,
                format!(
                    "object count mismatch: nodes hold {objects}, tree records {}",
                    self.len
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> Rect {
        Rect::new(0.0, 0.0, 1024.0, 1024.0)
    }

    fn scatter(n: u64) -> Vec<SpatialItem> {
        let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| {
                let x = rng() * 1000.0;
                let y = rng() * 1000.0;
                let w = rng() * 8.0;
                let h = rng() * 8.0;
                SpatialItem::new(i, Rect::new(x, y, x + w, y + h))
            })
            .collect()
    }

    fn tiny_config() -> QuadConfig {
        QuadConfig {
            max_depth: 8,
            bucket_capacity: 8,
        }
    }

    #[test]
    fn empty_tree_answers_nothing() {
        let mut t = QuadTree::new(DiskManager::new(), bounds()).unwrap();
        assert!(t.is_empty());
        assert_eq!(
            t.window_query(Rect::new(0.0, 0.0, 500.0, 500.0)).unwrap(),
            vec![]
        );
        t.validate().unwrap();
    }

    #[test]
    fn rejects_degenerate_bounds() {
        assert!(QuadTree::new(DiskManager::new(), Rect::new(0.0, 0.0, 0.0, 5.0)).is_err());
    }

    #[test]
    fn rejects_out_of_bounds_objects() {
        let mut t = QuadTree::new(DiskManager::new(), bounds()).unwrap();
        let item = SpatialItem::new(1, Rect::new(-5.0, 0.0, 1.0, 1.0));
        assert!(t.insert(item).is_err());
        assert!(t.is_empty());
    }

    #[test]
    fn insert_and_query_matches_brute_force() {
        let items = scatter(500);
        let mut t = QuadTree::with_config(DiskManager::new(), bounds(), tiny_config()).unwrap();
        for &it in &items {
            t.insert(it).unwrap();
        }
        t.validate().unwrap();
        assert_eq!(t.len(), 500);
        for w in [
            Rect::new(0.0, 0.0, 100.0, 100.0),
            Rect::new(400.0, 200.0, 700.0, 600.0),
            Rect::new(0.0, 0.0, 1024.0, 1024.0),
            Rect::new(1010.0, 1010.0, 1020.0, 1020.0),
        ] {
            let mut got = t.window_query(w).unwrap();
            got.sort_unstable();
            let mut want: Vec<u64> = items
                .iter()
                .filter(|it| it.mbr.intersects(&w))
                .map(|it| it.id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "window {w:?}");
        }
    }

    #[test]
    fn no_duplicates_in_answers() {
        let items = scatter(300);
        let mut t = QuadTree::with_config(DiskManager::new(), bounds(), tiny_config()).unwrap();
        for &it in &items {
            t.insert(it).unwrap();
        }
        let mut got = t.window_query(Rect::new(0.0, 0.0, 1024.0, 1024.0)).unwrap();
        let before = got.len();
        got.sort_unstable();
        got.dedup();
        assert_eq!(before, got.len(), "MX-CIF must not duplicate objects");
        assert_eq!(got.len(), 300);
    }

    #[test]
    fn splits_create_internal_nodes() {
        let items = scatter(400);
        let mut t = QuadTree::with_config(DiskManager::new(), bounds(), tiny_config()).unwrap();
        for &it in &items {
            t.insert(it).unwrap();
        }
        let stats = t.stats().unwrap();
        assert!(stats.internal_nodes > 0, "{stats:?}");
        assert!(stats.leaf_nodes > 1);
        assert_eq!(stats.objects, 400);
        assert_eq!(stats.total_pages(), t.page_count());
    }

    #[test]
    fn straddlers_stay_on_internal_nodes() {
        let mut t = QuadTree::with_config(
            DiskManager::new(),
            bounds(),
            QuadConfig {
                max_depth: 8,
                bucket_capacity: 4,
            },
        )
        .unwrap();
        // Objects crossing the root's center lines.
        for i in 0..10u64 {
            let r = Rect::centered_square(asb_geom::Point::new(512.0, 512.0), 4.0 + i as f64);
            t.insert(SpatialItem::new(i, r)).unwrap();
        }
        // Plus clustered objects to force a split.
        for i in 10..40u64 {
            let x = 10.0 + (i as f64) * 3.0;
            t.insert(SpatialItem::new(i, Rect::new(x, 10.0, x + 1.0, 11.0)))
                .unwrap();
        }
        t.validate().unwrap();
        // All 40 retrievable.
        assert_eq!(t.window_query(bounds()).unwrap().len(), 40);
    }

    #[test]
    fn point_concentration_builds_chains() {
        // Identical points cannot be separated by splitting: once max depth
        // is reached they chain.
        let mut t = QuadTree::with_config(
            DiskManager::new(),
            bounds(),
            QuadConfig {
                max_depth: 3,
                bucket_capacity: 4,
            },
        )
        .unwrap();
        for i in 0..200u64 {
            t.insert(SpatialItem::new(i, Rect::new(1.0, 1.0, 1.5, 1.5)))
                .unwrap();
        }
        t.validate().unwrap();
        let stats = t.stats().unwrap();
        assert!(stats.chain_pages > 0, "{stats:?}");
        assert_eq!(
            t.window_query(Rect::new(0.0, 0.0, 2.0, 2.0)).unwrap().len(),
            200
        );
    }

    #[test]
    fn delete_removes_and_shrinks_chains() {
        let items = scatter(300);
        let mut t = QuadTree::with_config(DiskManager::new(), bounds(), tiny_config()).unwrap();
        for &it in &items {
            t.insert(it).unwrap();
        }
        for it in &items[..200] {
            assert!(t.delete(it.id, &it.mbr).unwrap(), "object {}", it.id);
        }
        t.validate().unwrap();
        assert_eq!(t.len(), 100);
        for it in &items[..200] {
            assert!(!t.window_query(it.mbr).unwrap().contains(&it.id));
        }
        for it in &items[200..] {
            assert!(t.window_query(it.mbr).unwrap().contains(&it.id));
        }
    }

    #[test]
    fn delete_missing_returns_false() {
        let mut t = QuadTree::new(DiskManager::new(), bounds()).unwrap();
        t.insert(SpatialItem::new(1, Rect::new(1.0, 1.0, 2.0, 2.0)))
            .unwrap();
        assert!(!t.delete(2, &Rect::new(1.0, 1.0, 2.0, 2.0)).unwrap());
        assert!(!t.delete(1, &Rect::new(5.0, 5.0, 6.0, 6.0)).unwrap());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn buffered_quadtree_gives_identical_answers() {
        use asb_core::PolicyKind;
        let items = scatter(400);
        let mut plain = QuadTree::with_config(DiskManager::new(), bounds(), tiny_config()).unwrap();
        let mut buffered =
            QuadTree::with_config(DiskManager::new(), bounds(), tiny_config()).unwrap();
        for &it in &items {
            plain.insert(it).unwrap();
            buffered.insert(it).unwrap();
        }
        buffered.set_buffer(BufferManager::with_policy(PolicyKind::Asb, 16));
        for i in 0..30u64 {
            let x = (i as f64 * 31.0) % 900.0;
            let w = Rect::new(x, x / 2.0, x + 80.0, x / 2.0 + 80.0);
            let mut a = plain.window_query(w).unwrap();
            let mut b = buffered.window_query(w).unwrap();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        assert!(buffered.buffer_stats().unwrap().hits > 0);
    }

    #[test]
    fn pages_report_meaningful_meta() {
        let items = scatter(300);
        let mut disk = DiskManager::new();
        let mut t =
            QuadTree::with_config(std::mem::take(&mut disk), bounds(), tiny_config()).unwrap();
        for &it in &items {
            t.insert(it).unwrap();
        }
        let mut dir_pages = 0;
        let mut data_pages = 0;
        for page in t.store().iter_pages() {
            match page.meta.page_type {
                asb_storage::PageType::Directory => dir_pages += 1,
                asb_storage::PageType::Data => data_pages += 1,
                asb_storage::PageType::Object => panic!("no object pages here"),
            }
            if page.meta.stats.entry_count > 0 {
                assert!(page.meta.stats.mbr.is_some());
            }
        }
        assert!(dir_pages > 0 && data_pages > 0);
    }
}
