//! Quadtree node pages and their codec.

use asb_geom::{Point, Rect, SpatialStats};
use asb_storage::{Page, PageId, PageMeta, PageType, StorageError, PAGE_HEADER_SIZE, PAGE_SIZE};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Children per node (quadrants).
pub const CHILDREN: usize = 4;

/// Serialized size of one entry: MBR (32) + object id (8).
pub(crate) const ENTRY_SIZE: usize = 40;

/// Sentinel for "no page" in child / continuation pointers (`PageId(0)` is
/// a valid page).
pub(crate) const NO_PAGE: u64 = u64::MAX;

/// Bytes of the fixed part after the common page header: continuation
/// pointer (8) + four child pointers (32).
const LINKS_SIZE: usize = 8 + CHILDREN * 8;

/// Maximum entries in one page of a node chain.
pub(crate) const PAGE_CAPACITY: usize = (PAGE_SIZE - PAGE_HEADER_SIZE - LINKS_SIZE) / ENTRY_SIZE;

/// One object entry of a quadtree node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadEntry {
    /// The object's MBR.
    pub mbr: Rect,
    /// Application-level object id.
    pub object_id: u64,
}

/// A quadtree node page (primary or continuation).
///
/// A *node* of the logical quadtree is a chain of pages: the primary page
/// carries the child pointers; continuation pages only carry further
/// entries. `children` of continuation pages are all unset.
#[derive(Debug, Clone, PartialEq)]
pub struct QuadNode {
    /// Depth of the node's cell (root = 0).
    pub depth: u8,
    /// Whether any child pointer is set (primary pages only).
    pub children: [Option<PageId>; CHILDREN],
    /// Continuation page holding further entries of this node, if any.
    pub next: Option<PageId>,
    /// Entries stored on *this page* of the chain.
    pub entries: Vec<QuadEntry>,
}

impl QuadNode {
    /// An empty leaf page at the given depth.
    pub fn new_leaf(depth: u8) -> Self {
        QuadNode {
            depth,
            children: [None; CHILDREN],
            next: None,
            entries: Vec::new(),
        }
    }

    /// Whether this page has any child pointers (i.e. is the primary page
    /// of an internal node).
    pub fn is_internal(&self) -> bool {
        self.children.iter().any(|c| c.is_some())
    }

    /// Page metadata: internal nodes are directory pages, leaves data
    /// pages; the priority level decreases with depth (the root has the
    /// highest priority, like the R\*-tree root).
    pub fn page_meta(&self, max_depth: u8) -> PageMeta {
        let stats =
            SpatialStats::from_rects(&self.entries.iter().map(|e| e.mbr).collect::<Vec<_>>());
        let level = (max_depth.saturating_sub(self.depth)).saturating_add(1);
        if self.is_internal() {
            PageMeta {
                page_type: PageType::Directory,
                level: level.max(2),
                stats,
            }
        } else {
            PageMeta {
                page_type: PageType::Data,
                level: 1,
                stats,
            }
        }
    }

    /// Serializes the page.
    ///
    /// Layout: `[tag u8][depth u8][count u16][reserved u32]`, continuation
    /// pointer, 4 child pointers, then entries.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(
            PAGE_HEADER_SIZE + LINKS_SIZE + self.entries.len() * ENTRY_SIZE,
        );
        let tag = if self.is_internal() {
            PageType::Directory
        } else {
            PageType::Data
        };
        buf.put_u8(tag.tag());
        buf.put_u8(self.depth);
        buf.put_u16_le(self.entries.len() as u16);
        buf.put_u32_le(0);
        buf.put_u64_le(self.next.map_or(NO_PAGE, |p| p.raw()));
        for child in &self.children {
            buf.put_u64_le(child.map_or(NO_PAGE, |p| p.raw()));
        }
        for e in &self.entries {
            buf.put_f64_le(e.mbr.min.x);
            buf.put_f64_le(e.mbr.min.y);
            buf.put_f64_le(e.mbr.max.x);
            buf.put_f64_le(e.mbr.max.y);
            buf.put_u64_le(e.object_id);
        }
        buf.freeze()
    }

    /// Decodes a page.
    pub fn decode(page: &Page) -> Result<QuadNode, StorageError> {
        let corrupt = |reason: &str| StorageError::Corrupt {
            id: page.id,
            reason: reason.to_string(),
        };
        let mut buf = page.payload.clone();
        if buf.remaining() < PAGE_HEADER_SIZE + LINKS_SIZE {
            return Err(corrupt("quadtree page shorter than its header"));
        }
        let tag = buf.get_u8();
        if PageType::from_tag(tag).is_none() {
            return Err(corrupt("not a quadtree page"));
        }
        let depth = buf.get_u8();
        let count = buf.get_u16_le() as usize;
        let _reserved = buf.get_u32_le();
        let raw_next = buf.get_u64_le();
        let next = (raw_next != NO_PAGE).then(|| PageId::new(raw_next));
        let mut children = [None; CHILDREN];
        for slot in &mut children {
            let raw = buf.get_u64_le();
            *slot = (raw != NO_PAGE).then(|| PageId::new(raw));
        }
        if buf.remaining() < count * ENTRY_SIZE {
            return Err(corrupt("truncated quadtree entries"));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let x0 = buf.get_f64_le();
            let y0 = buf.get_f64_le();
            let x1 = buf.get_f64_le();
            let y1 = buf.get_f64_le();
            let object_id = buf.get_u64_le();
            entries.push(QuadEntry {
                mbr: Rect {
                    min: Point::new(x0, y0),
                    max: Point::new(x1, y1),
                },
                object_id,
            });
        }
        Ok(QuadNode {
            depth,
            children,
            next,
            entries,
        })
    }
}

/// The four quadrants of a cell, indexed SW, SE, NW, NE.
pub(crate) fn quadrants(cell: &Rect) -> [Rect; CHILDREN] {
    let c = cell.center();
    [
        Rect::from_corners(cell.min, c),
        Rect::new(c.x, cell.min.y, cell.max.x, c.y),
        Rect::new(cell.min.x, c.y, c.x, cell.max.y),
        Rect::from_corners(c, cell.max),
    ]
}

/// The quadrant of `cell` that contains `mbr` entirely, if any.
///
/// Containment is tested with half-open semantics on the shared center
/// lines (an MBR touching the center line from below belongs to the lower
/// quadrant), so an MBR is assigned to at most one quadrant and objects on
/// the boundary never oscillate.
pub(crate) fn containing_quadrant(cell: &Rect, mbr: &Rect) -> Option<usize> {
    let c = cell.center();
    let right = mbr.min.x >= c.x;
    let left = mbr.max.x < c.x;
    let top = mbr.min.y >= c.y;
    let bottom = mbr.max.y < c.y;
    match (left, right, bottom, top) {
        (true, _, true, _) => Some(0), // SW
        (_, true, true, _) => Some(1), // SE
        (true, _, _, true) => Some(2), // NW
        (_, true, _, true) => Some(3), // NE
        _ => None,                     // straddles a center line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_capacity_is_sensible() {
        // (2048 - 8 - 40) / 40 = 50 entries per page.
        assert_eq!(PAGE_CAPACITY, 50);
    }

    fn sample_node() -> QuadNode {
        QuadNode {
            depth: 3,
            children: [Some(PageId::new(7)), None, Some(PageId::new(9)), None],
            next: Some(PageId::new(42)),
            entries: vec![
                QuadEntry {
                    mbr: Rect::new(0.0, 0.0, 1.0, 1.0),
                    object_id: 5,
                },
                QuadEntry {
                    mbr: Rect::new(2.0, 2.0, 3.0, 4.0),
                    object_id: 6,
                },
            ],
        }
    }

    #[test]
    fn codec_roundtrip() {
        let node = sample_node();
        let page = Page::new(PageId::new(1), node.page_meta(16), node.encode()).unwrap();
        assert_eq!(QuadNode::decode(&page).unwrap(), node);
    }

    #[test]
    fn empty_leaf_roundtrip() {
        let node = QuadNode::new_leaf(0);
        let page = Page::new(PageId::new(1), node.page_meta(16), node.encode()).unwrap();
        let back = QuadNode::decode(&page).unwrap();
        assert_eq!(back, node);
        assert!(!back.is_internal());
    }

    #[test]
    fn full_page_fits() {
        let mut node = QuadNode::new_leaf(2);
        for i in 0..PAGE_CAPACITY {
            node.entries.push(QuadEntry {
                mbr: Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0),
                object_id: i as u64,
            });
        }
        assert!(node.encode().len() <= PAGE_SIZE);
        let page = Page::new(PageId::new(1), node.page_meta(16), node.encode()).unwrap();
        assert_eq!(
            QuadNode::decode(&page).unwrap().entries.len(),
            PAGE_CAPACITY
        );
    }

    #[test]
    fn meta_classifies_internal_vs_leaf() {
        let internal = sample_node();
        assert_eq!(internal.page_meta(16).page_type, PageType::Directory);
        let leaf = QuadNode::new_leaf(16);
        assert_eq!(leaf.page_meta(16).page_type, PageType::Data);
        assert_eq!(leaf.page_meta(16).level, 1);
        // Root (depth 0) gets the highest priority.
        let root = QuadNode::new_leaf(0);
        assert!(root.page_meta(16).level >= leaf.page_meta(16).level);
    }

    #[test]
    fn quadrants_partition_the_cell() {
        let cell = Rect::new(0.0, 0.0, 8.0, 8.0);
        let qs = quadrants(&cell);
        let total: f64 = qs.iter().map(|q| q.area()).sum();
        assert!((total - cell.area()).abs() < 1e-9);
        for q in &qs {
            assert!(cell.contains(q));
        }
    }

    #[test]
    fn containing_quadrant_assignments() {
        let cell = Rect::new(0.0, 0.0, 8.0, 8.0);
        assert_eq!(
            containing_quadrant(&cell, &Rect::new(1.0, 1.0, 2.0, 2.0)),
            Some(0)
        );
        assert_eq!(
            containing_quadrant(&cell, &Rect::new(5.0, 1.0, 6.0, 2.0)),
            Some(1)
        );
        assert_eq!(
            containing_quadrant(&cell, &Rect::new(1.0, 5.0, 2.0, 6.0)),
            Some(2)
        );
        assert_eq!(
            containing_quadrant(&cell, &Rect::new(5.0, 5.0, 6.0, 6.0)),
            Some(3)
        );
        // Straddles the vertical center line.
        assert_eq!(
            containing_quadrant(&cell, &Rect::new(3.0, 1.0, 5.0, 2.0)),
            None
        );
        // Touching the center from the right belongs to the east side.
        assert_eq!(
            containing_quadrant(&cell, &Rect::new(4.0, 0.0, 5.0, 1.0)),
            Some(1)
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        let meta = PageMeta::data(SpatialStats::EMPTY);
        let page = Page::new(PageId::new(3), meta, Bytes::from_static(b"junk")).unwrap();
        assert!(QuadNode::decode(&page).is_err());
    }
}
