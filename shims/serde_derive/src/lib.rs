//! Offline stand-in for `serde_derive`.
//!
//! Parses the deriving item directly from the token stream (no `syn`/`quote`
//! available offline) and generates `Serialize`/`Deserialize` impls against
//! the shim `serde` crate's `Value` data model. Field types never need to be
//! parsed: generated code relies on inference via
//! `serde::Deserialize::deserialize`. Supports non-generic structs (named,
//! tuple, unit) and enums (unit, newtype, tuple, struct variants) with
//! externally-tagged representation, matching real serde's default.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field shape of a struct or enum variant.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Parsed shape of the deriving item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for a non-generic struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---- parsing -------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute or doc comment: skip the bracket group.
                toks.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility, possibly pub(crate): skip optional paren group.
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut toks);
                reject_generics(&mut toks, &name);
                let fields = match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_field_names(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Fields::Tuple(count_tuple_fields(g.stream()))
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                    other => {
                        panic!("serde shim derive: unexpected token after struct {name}: {other:?}")
                    }
                };
                return Item::Struct { name, fields };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut toks);
                reject_generics(&mut toks, &name);
                let body = match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                    other => {
                        panic!("serde shim derive: expected enum body for {name}, got {other:?}")
                    }
                };
                return Item::Enum {
                    name,
                    variants: parse_variants(body),
                };
            }
            Some(other) => panic!("serde shim derive: unexpected token {other:?}"),
            None => panic!("serde shim derive: no struct or enum found"),
        }
    }
}

fn expect_ident(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> String {
    match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected identifier, got {other:?}"),
    }
}

fn reject_generics(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>, name: &str) {
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type {name} is not supported");
        }
    }
}

/// Extracts field names from the brace body of a struct or struct variant.
fn parse_field_names(stream: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes / doc comments and visibility before the name.
        match toks.peek() {
            None => return names,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next();
                continue;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
                continue;
            }
            _ => {}
        }
        names.push(expect_ident(&mut toks));
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field name, got {other:?}"),
        }
        // Skip the type: everything until a comma outside angle brackets.
        let mut angle_depth = 0i32;
        loop {
            match toks.next() {
                None => return names,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

/// Counts the fields in the paren body of a tuple struct or tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens = true;
    }
    count + usize::from(saw_tokens)
}

/// Parses the variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        match toks.peek() {
            None => return variants,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next();
                continue;
            }
            _ => {}
        }
        let name = expect_ident(&mut toks);
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body = g.stream();
                toks.next();
                Fields::Named(parse_field_names(body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body = g.stream();
                toks.next();
                Fields::Tuple(count_tuple_fields(body))
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Skip an optional discriminant and the separating comma.
        loop {
            match toks.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
    }
}

// ---- code generation -----------------------------------------------------

fn serialize_fields_named(receiver: &str, names: &[String]) -> String {
    let pairs: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize({receiver}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
}

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(names) => serialize_fields_named("&self.", names),
        Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(v, fields)| match fields {
            Fields::Unit => format!(
                "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
            ),
            Fields::Tuple(1) => format!(
                "{name}::{v}(x0) => ::serde::Value::Object(vec![(::std::string::String::from(\"{v}\"), ::serde::Serialize::serialize(x0))]),"
            ),
            Fields::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::serialize(x{i})"))
                    .collect();
                format!(
                    "{name}::{v}({}) => ::serde::Value::Object(vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Array(vec![{}]))]),",
                    binders.join(", "),
                    items.join(", ")
                )
            }
            Fields::Named(field_names) => {
                let binders = field_names.join(", ");
                let inner = serialize_fields_named("", field_names);
                format!(
                    "{name}::{v} {{ {binders} }} => ::serde::Value::Object(vec![(::std::string::String::from(\"{v}\"), {inner})]),"
                )
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n\
                 match self {{ {} }}\n\
             }}\n\
         }}",
        arms.join("\n")
    )
}

fn deserialize_fields_named(owner: &str, names: &[String]) -> String {
    let inits: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize(::serde::field(fields, \"{owner}\", \"{f}\")?)?,"
            )
        })
        .collect();
    inits.join("\n")
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!(
            "match value {{\n\
                 ::serde::Value::Null => Ok({name}),\n\
                 other => Err(::serde::DeError::invalid_type(\"null for unit struct {name}\", other)),\n\
             }}"
        ),
        Fields::Named(names) => {
            let inits = deserialize_fields_named(name, names);
            format!(
                "let fields = ::serde::expect_object(value, \"{name}\")?;\n\
                 Ok({name} {{ {inits} }})"
            )
        }
        Fields::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize(value)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} => Ok({name}({})),\n\
                     other => Err(::serde::DeError::invalid_type(\"array of {n} for {name}\", other)),\n\
                 }}",
                items.join(", ")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|(v, fields)| match fields {
            Fields::Unit => None,
            Fields::Tuple(1) => Some(format!(
                "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::deserialize(inner)?)),"
            )),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                    .collect();
                Some(format!(
                    "\"{v}\" => match inner {{\n\
                         ::serde::Value::Array(items) if items.len() == {n} => Ok({name}::{v}({})),\n\
                         other => Err(::serde::DeError::invalid_type(\"array of {n} for {name}::{v}\", other)),\n\
                     }},",
                    items.join(", ")
                ))
            }
            Fields::Named(field_names) => {
                let owner = format!("{name}::{v}");
                let inits = deserialize_fields_named(&owner, field_names);
                Some(format!(
                    "\"{v}\" => {{\n\
                         let fields = ::serde::expect_object(inner, \"{owner}\")?;\n\
                         Ok({name}::{v} {{ {inits} }})\n\
                     }}"
                ))
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match value {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit}\n\
                         other => Err(::serde::DeError::unknown_variant(\"{name}\", other)),\n\
                     }},\n\
                     ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {tagged}\n\
                             other => Err(::serde::DeError::unknown_variant(\"{name}\", other)),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::DeError::invalid_type(\"enum {name}\", other)),\n\
                 }}\n\
             }}\n\
         }}",
        unit = unit_arms.join("\n"),
        tagged = tagged_arms.join("\n")
    )
}
