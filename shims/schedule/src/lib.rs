//! Deterministic cooperative scheduler for model-checking concurrent code.
//!
//! This crate is the engine behind the workspace's `asb_schedule` build
//! mode: the sync facade in `asb-storage` (re-exported as `asb_core::sync`)
//! compiles to the [`sync`] primitives defined here, and a test scenario
//! run under [`explore`] has every lock acquisition and atomic operation
//! turned into a *scheduling point*. Only one controlled thread runs at a
//! time; at every scheduling point the explorer picks which runnable thread
//! proceeds, so repeated runs enumerate bounded thread interleavings —
//! a loom-style model checker small enough to live in-tree and built from
//! nothing but `std`.
//!
//! # How control works
//!
//! [`explore`] runs a scenario closure once per *schedule*. Each run spawns
//! the closure on a fresh controlled root thread; the closure spawns more
//! controlled threads with [`thread::spawn`]. Controlled threads park at
//! every scheduling point (spawn, lock acquire, atomic op, join, exit) and
//! the explorer — holding a seeded deterministic PRNG — picks the next
//! thread among those that are *runnable* (not blocked on a held lock, a
//! busy rwlock, or an unfinished join target). The sequence of picks is the
//! schedule; its hash identifies the interleaving, and exploration stops
//! once a target number of distinct schedules has been observed (or a
//! budget of runs is exhausted).
//!
//! Determinism: schedule `i` of an exploration seeded `s` draws every pick
//! from `splitmix64(s, i)`. The same seed explores the same schedules in
//! the same order, so a failure reproduces exactly — the failing pick
//! sequence is also written to an artifact file for CI to upload.
//!
//! # Outside an exploration
//!
//! Every primitive here falls back to plain `std` behaviour when the
//! current thread is not controlled (no thread-local scheduler context), so
//! a workspace compiled with `--cfg asb_schedule` still runs its ordinary
//! tests correctly — only threads spawned inside [`explore`] are scheduled.
//!
//! Deadlocks are detected (no runnable thread while some are still blocked)
//! and reported as a panic carrying the schedule trace.
//!
//! # Lock-order checking
//!
//! Every run also records a *lock-acquisition graph*: a node per lock
//! (kind + deterministic per-run registration index), an edge `a -> b`
//! whenever a thread acquires `b` while holding `a`. [`explore`] unions
//! the graph across all schedules it runs and panics if the union is
//! cyclic — catching lock-order inversions whose two halves never ran
//! close enough together to deadlock in any single explored schedule.
//! The offending edges, each tagged with the iteration (and derived rng
//! seed) that first produced it, are written to the artifact directory as
//! `{name}-seed{seed}-lockcycle.txt`. The per-exploration union is
//! returned on [`Report::lock_graph`]; [`lock_graph`] exposes the
//! process-wide union. Locks only ever acquired by their creating thread
//! contribute no edges — this keeps single-flight latches from
//! fabricating `map -> latch` orderings that no pair of threads can ever
//! contend on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};

/// SplitMix64 step: the deterministic PRNG driving schedule choices.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a choice trace: the schedule's identity hash.
fn fnv1a(trace: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in trace {
        for b in c.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Source of unique ids for model-tracked locks.
static NEXT_LOCK_ID: AtomicU64 = AtomicU64::new(0);

fn fresh_lock_id() -> u64 {
    NEXT_LOCK_ID.fetch_add(1, StdOrdering::Relaxed)
}

/// Kind of a model-tracked lock, distinguished in the acquisition graph so
/// a cycle report names the primitive involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockKind {
    /// A [`sync::Mutex`].
    Mutex,
    /// A [`sync::RwLock`] (reader and writer acquisitions share the node).
    RwLock,
}

/// One lock in the acquisition graph: its kind plus its registration index
/// within the run. The index counts lock *creations* on controlled threads
/// (plus lazy registrations at first grant, for locks built outside the
/// scenario), so it is a pure function of the scenario — unlike the
/// process-global lock id, which shifts when tests run in parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockNode {
    /// Which primitive this node stands for.
    pub kind: LockKind,
    /// Deterministic per-run registration index.
    pub index: u64,
}

impl std::fmt::Display for LockNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            LockKind::Mutex => write!(f, "M{}", self.index),
            LockKind::RwLock => write!(f, "R{}", self.index),
        }
    }
}

/// Union lock-acquisition graph of an exploration: an edge `a -> b` means
/// some explored schedule acquired `b` while holding `a`. Each edge carries
/// the iteration that first recorded it, so a cycle report points at
/// concrete reproducible schedules. A cycle in the *union* is a lock-order
/// inversion even when no single schedule deadlocked — the two halves of
/// the inversion may live in schedules that never overlapped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockGraph {
    edges: BTreeMap<(LockNode, LockNode), u64>,
}

impl LockGraph {
    /// Iterates `(held, acquired, first_iteration)` edges in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = (LockNode, LockNode, u64)> + '_ {
        self.edges.iter().map(|(&(a, b), &it)| (a, b, it))
    }

    /// Number of distinct edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no edges at all.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finds a directed cycle, if one exists. Returns the node sequence
    /// `[n0, n1, ..., n0]` (first node repeated to close the loop), picking
    /// deterministically (DFS in node order) when several cycles exist.
    pub fn cycle(&self) -> Option<Vec<LockNode>> {
        fn dfs(
            n: LockNode,
            adj: &BTreeMap<LockNode, Vec<LockNode>>,
            color: &mut BTreeMap<LockNode, u8>,
            stack: &mut Vec<LockNode>,
        ) -> Option<Vec<LockNode>> {
            color.insert(n, 1);
            stack.push(n);
            for &m in adj.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                match color.get(&m).copied().unwrap_or(0) {
                    0 => {
                        if let Some(c) = dfs(m, adj, color, stack) {
                            return Some(c);
                        }
                    }
                    1 => {
                        let pos = stack.iter().position(|&x| x == m).unwrap_or(0);
                        let mut cyc = stack[pos..].to_vec();
                        cyc.push(m);
                        return Some(cyc);
                    }
                    _ => {}
                }
            }
            stack.pop();
            color.insert(n, 2);
            None
        }
        let mut adj: BTreeMap<LockNode, Vec<LockNode>> = BTreeMap::new();
        for &(a, b) in self.edges.keys() {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default();
        }
        let mut color: BTreeMap<LockNode, u8> = adj.keys().map(|&n| (n, 0u8)).collect();
        let mut stack = Vec::new();
        let nodes: Vec<LockNode> = adj.keys().copied().collect();
        for n in nodes {
            if color.get(&n).copied() == Some(0) {
                if let Some(c) = dfs(n, &adj, &mut color, &mut stack) {
                    return Some(c);
                }
            }
        }
        None
    }
}

/// Process-wide union of every completed exploration's (acyclic) lock
/// graph, keyed by `LockNode`. Explorations that panicked on a cycle are
/// *not* merged, so one failing scenario cannot poison the view other
/// tests see.
static GLOBAL_GRAPH: StdMutex<BTreeMap<(LockNode, LockNode), u64>> = StdMutex::new(BTreeMap::new());

/// Snapshot of the process-wide union lock graph accumulated by every
/// [`explore`] call so far. Diagnostic: node indices are per-run, so the
/// union is only meaningful across scenarios that build their locks in the
/// same order (as the workspace's pool scenarios do). Per-scenario
/// acyclicity is what [`explore`] itself enforces.
pub fn lock_graph() -> LockGraph {
    LockGraph {
        edges: GLOBAL_GRAPH
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone(),
    }
}

/// Per-lock bookkeeping for the acquisition graph.
struct LockMeta {
    node: LockNode,
    /// Thread that created the lock (None when created off controlled
    /// threads and first seen at grant time).
    creator: Option<usize>,
    /// Whether any thread other than the creator ever acquired it.
    foreign: bool,
}

/// Registers a lock created on a controlled thread, assigning its
/// deterministic per-run node index. No-op off controlled threads (such
/// locks are registered lazily at first grant instead).
fn register_lock(id: u64, kind: LockKind) {
    if let Some(ctx) = current_ctx() {
        let mut st = ctx.shared.m.lock().unwrap_or_else(PoisonError::into_inner);
        let node = LockNode {
            kind,
            index: st.next_node,
        };
        st.next_node += 1;
        st.lock_meta.insert(
            id,
            LockMeta {
                node,
                creator: Some(ctx.tid),
                foreign: false,
            },
        );
    }
}

/// Records a grant of lock `id` to thread `tid` in the acquisition graph:
/// adds `held -> id` edges for everything the thread holds, then pushes
/// `id` onto its held stack.
///
/// Creator-private skip: while a lock has only ever been acquired by the
/// thread that created it, its acquisitions record no edges. This is what
/// keeps single-flight latches honest — the leader creates a latch and
/// locks it while holding the map lock, but followers only ever take the
/// latch bare, so `map -> latch` is an ordering that no two threads can
/// ever contend on and must not close a cycle.
fn note_acquire(st: &mut State, tid: usize, id: u64, kind: LockKind) {
    if !st.lock_meta.contains_key(&id) {
        let node = LockNode {
            kind,
            index: st.next_node,
        };
        st.next_node += 1;
        st.lock_meta.insert(
            id,
            LockMeta {
                node,
                creator: None,
                foreign: true,
            },
        );
    }
    let meta = st.lock_meta.get_mut(&id).expect("lock registered above");
    if meta.creator != Some(tid) {
        meta.foreign = true;
    }
    let private = meta.creator == Some(tid) && !meta.foreign;
    let node = meta.node;
    if !private {
        let held = st.held[tid].clone();
        for h in held {
            if h != id {
                if let Some(hm) = st.lock_meta.get(&h) {
                    let edge = (hm.node, node);
                    st.edges.insert(edge);
                }
            }
        }
    }
    st.held[tid].push(id);
}

/// Removes one held occurrence of `id` from thread `tid`'s stack (guards
/// can drop out of acquisition order, so this is a search, not a pop).
fn note_release(st: &mut State, tid: usize, id: u64) {
    if let Some(held) = st.held.get_mut(tid) {
        if let Some(pos) = held.iter().rposition(|&h| h == id) {
            held.remove(pos);
        }
    }
}

/// Why a parked thread cannot run yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocker {
    /// Wants a mutex.
    Lock(u64),
    /// Wants shared access to a rwlock.
    Read(u64),
    /// Wants exclusive access to a rwlock.
    Write(u64),
    /// Waiting for thread `tid` to finish.
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Parked at a pure scheduling point; can run whenever picked.
    Ready,
    /// Parked waiting for a resource.
    Blocked(Blocker),
    /// Currently executing (at most one thread at a time).
    Running,
    /// Body returned (or panicked); never scheduled again.
    Done,
}

#[derive(Debug, Default)]
struct LockState {
    writer: bool,
    readers: usize,
}

struct State {
    threads: Vec<Status>,
    locks: HashMap<u64, LockState>,
    /// Index of the thread currently Running, if any.
    running: Option<usize>,
    /// The schedule so far: which thread was picked at each step.
    trace: Vec<u32>,
    /// Scheduling points contributed by sync primitives (not by
    /// spawn/join/exit). Zero means the facade compiled to real locks.
    sync_points: u64,
    /// First panic payload raised by a controlled thread.
    panic: Option<Box<dyn Any + Send>>,
    /// Graph bookkeeping: per-lock node/creator metadata.
    lock_meta: HashMap<u64, LockMeta>,
    /// Lock ids each thread currently holds, in acquisition order.
    held: Vec<Vec<u64>>,
    /// Next per-run [`LockNode`] index to hand out.
    next_node: u64,
    /// Held-while-acquiring edges recorded during this run.
    edges: BTreeSet<(LockNode, LockNode)>,
}

struct Shared {
    m: StdMutex<State>,
    cv: Condvar,
}

impl Shared {
    fn new() -> Arc<Self> {
        Arc::new(Shared {
            m: StdMutex::new(State {
                threads: Vec::new(),
                locks: HashMap::new(),
                running: None,
                trace: Vec::new(),
                sync_points: 0,
                panic: None,
                lock_meta: HashMap::new(),
                held: Vec::new(),
                next_node: 0,
                edges: BTreeSet::new(),
            }),
            cv: Condvar::new(),
        })
    }
}

/// Per-thread scheduler handle (present only on controlled threads).
#[derive(Clone)]
struct Ctx {
    shared: Arc<Shared>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

impl Ctx {
    /// Parks the calling thread at a scheduling point and blocks until the
    /// explorer picks it again. `status` is `Ready` for a pure yield or
    /// `Blocked` when a resource is wanted — the explorer performs the
    /// grant bookkeeping before waking the thread.
    fn park(&self, status: Status, is_sync_point: bool) {
        let mut st = self.shared.m.lock().unwrap_or_else(PoisonError::into_inner);
        st.threads[self.tid] = status;
        st.running = None;
        if is_sync_point {
            st.sync_points += 1;
        }
        self.shared.cv.notify_all();
        while st.threads[self.tid] != Status::Running {
            st = self
                .shared
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Releases a model lock (mutex or rwlock-writer). Never blocks.
    fn release_write(&self, id: u64) {
        let mut st = self.shared.m.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(l) = st.locks.get_mut(&id) {
            l.writer = false;
        }
        note_release(&mut st, self.tid, id);
        self.shared.cv.notify_all();
    }

    /// Releases one shared (reader) hold of a model rwlock. Never blocks.
    fn release_read(&self, id: u64) {
        let mut st = self.shared.m.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(l) = st.locks.get_mut(&id) {
            l.readers = l.readers.saturating_sub(1);
        }
        note_release(&mut st, self.tid, id);
        self.shared.cv.notify_all();
    }
}

/// Marks the calling thread's next action as a scheduling point if it is
/// controlled; no-op otherwise.
fn yield_point() {
    if let Some(ctx) = current_ctx() {
        ctx.park(Status::Ready, true);
    }
}

/// Registers and starts a controlled thread running `f`. The thread parks
/// immediately and runs only when the explorer schedules it.
fn spawn_controlled<T, F>(shared: &Arc<Shared>, slot: Arc<StdMutex<Option<T>>>, f: F) -> usize
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let tid = {
        let mut st = shared.m.lock().unwrap_or_else(PoisonError::into_inner);
        st.threads.push(Status::Ready);
        st.held.push(Vec::new());
        st.threads.len() - 1
    };
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        let ctx = Ctx {
            shared: Arc::clone(&shared),
            tid,
        };
        CTX.with(|c| *c.borrow_mut() = Some(ctx));
        // Wait to be scheduled for the first time.
        {
            let mut st = shared.m.lock().unwrap_or_else(PoisonError::into_inner);
            while st.threads[tid] != Status::Running {
                st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(f));
        let mut st = shared.m.lock().unwrap_or_else(PoisonError::into_inner);
        match outcome {
            Ok(value) => {
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
            }
            Err(payload) => {
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
            }
        }
        st.threads[tid] = Status::Done;
        st.running = None;
        shared.cv.notify_all();
    });
    tid
}

/// Whether a parked thread could run right now.
fn is_runnable(st: &State, tid: usize) -> bool {
    match st.threads[tid] {
        Status::Ready => true,
        Status::Blocked(Blocker::Lock(id)) | Status::Blocked(Blocker::Write(id)) => {
            match st.locks.get(&id) {
                Some(l) => !l.writer && l.readers == 0,
                None => true,
            }
        }
        Status::Blocked(Blocker::Read(id)) => match st.locks.get(&id) {
            Some(l) => !l.writer,
            None => true,
        },
        Status::Blocked(Blocker::Join(target)) => st.threads[target] == Status::Done,
        Status::Running | Status::Done => false,
    }
}

/// Runs one schedule to completion: repeatedly waits for the running
/// thread to park, then picks and grants the next runnable thread.
fn drive_schedule(shared: &Arc<Shared>, mut rng: u64) -> Result<Vec<u32>, Box<dyn Any + Send>> {
    loop {
        let mut st = shared.m.lock().unwrap_or_else(PoisonError::into_inner);
        while st.running.is_some() {
            st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if let Some(payload) = st.panic.take() {
            return Err(payload);
        }
        let runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&t| is_runnable(&st, t))
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|&t| t == Status::Done) {
                return Ok(std::mem::take(&mut st.trace));
            }
            let blocked: Vec<usize> = (0..st.threads.len())
                .filter(|&t| matches!(st.threads[t], Status::Blocked(_)))
                .collect();
            return Err(Box::new(format!(
                "deadlock: threads {blocked:?} blocked with no runnable thread (trace: {:?})",
                st.trace
            )));
        }
        let pick = runnable[(splitmix64(&mut rng) % runnable.len() as u64) as usize];
        // Grant the resource the picked thread was waiting for, recording
        // the acquisition in the lock graph.
        match st.threads[pick] {
            Status::Blocked(Blocker::Lock(id)) => {
                st.locks.entry(id).or_default().writer = true;
                note_acquire(&mut st, pick, id, LockKind::Mutex);
            }
            Status::Blocked(Blocker::Write(id)) => {
                st.locks.entry(id).or_default().writer = true;
                note_acquire(&mut st, pick, id, LockKind::RwLock);
            }
            Status::Blocked(Blocker::Read(id)) => {
                st.locks.entry(id).or_default().readers += 1;
                note_acquire(&mut st, pick, id, LockKind::RwLock);
            }
            _ => {}
        }
        st.trace.push(pick as u32);
        st.threads[pick] = Status::Running;
        st.running = Some(pick);
        shared.cv.notify_all();
    }
}

/// Exploration parameters. See [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Scenario name (used in artifact file names and failure messages).
    pub name: &'static str,
    /// Base seed: the whole exploration is a pure function of it.
    pub seed: u64,
    /// Stop once this many *distinct* schedules have been observed.
    pub target_distinct: usize,
    /// Hard budget of schedule runs (bounds wall-clock time even when the
    /// schedule space is smaller than `target_distinct`).
    pub max_schedules: usize,
    /// Where to write the failing-schedule artifact (`None` disables).
    pub artifact_dir: Option<std::path::PathBuf>,
}

impl ExploreConfig {
    /// Defaults sized for CI: 1000 distinct schedules, 4000-run budget,
    /// artifacts under `target/schedule-artifacts/`.
    pub fn new(name: &'static str, seed: u64) -> Self {
        ExploreConfig {
            name,
            seed,
            target_distinct: 1000,
            max_schedules: 4000,
            artifact_dir: Some(std::path::PathBuf::from("target/schedule-artifacts")),
        }
    }
}

/// What an exploration did. Returned by [`explore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Schedule runs executed.
    pub schedules_run: usize,
    /// Distinct schedules (unique pick sequences) observed.
    pub distinct_schedules: usize,
    /// Whether sync primitives contributed scheduling points. `false`
    /// means the facade compiled to real locks (no `--cfg asb_schedule`):
    /// runs are still deterministic whole-thread permutations, but
    /// fine-grained interleavings were not explored.
    pub controlled: bool,
    /// Order-sensitive digest of every schedule hash: two explorations
    /// with the same seed must produce the same digest.
    pub digest: u64,
    /// Union lock-acquisition graph over every explored schedule. Always
    /// acyclic here — a cycle panics inside [`explore`] instead of
    /// returning. Bit-for-bit deterministic per seed.
    pub lock_graph: LockGraph,
}

/// Explores bounded interleavings of `scenario`, which must spawn its
/// concurrent work through [`thread::spawn`].
///
/// The scenario runs once per schedule on a fresh controlled thread; any
/// panic (assertion failure, deadlock report) aborts the exploration,
/// writes the failing schedule to the artifact directory, and re-raises the
/// panic on the calling thread — so `#[should_panic]` tests compose.
///
/// # Panics
/// Re-raises the first scenario panic, and panics on detected deadlock.
pub fn explore<F>(cfg: &ExploreConfig, scenario: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let scenario = Arc::new(scenario);
    let mut distinct: HashSet<u64> = HashSet::new();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut runs = 0usize;
    let mut controlled = false;
    let mut union: BTreeMap<(LockNode, LockNode), u64> = BTreeMap::new();
    for iteration in 0..cfg.max_schedules {
        if distinct.len() >= cfg.target_distinct {
            break;
        }
        let shared = Shared::new();
        let slot = Arc::new(StdMutex::new(None::<()>));
        let body = Arc::clone(&scenario);
        spawn_controlled(&shared, slot, move || body());
        let mut seed = cfg.seed ^ (iteration as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        splitmix64(&mut seed);
        let outcome = drive_schedule(&shared, seed);
        runs += 1;
        let mut st = shared.m.lock().unwrap_or_else(PoisonError::into_inner);
        if st.sync_points > 0 {
            controlled = true;
        }
        let run_edges = std::mem::take(&mut st.edges);
        drop(st);
        for e in run_edges {
            union.entry(e).or_insert(iteration as u64);
        }
        match outcome {
            Ok(trace) => {
                let h = fnv1a(&trace);
                distinct.insert(h);
                digest = digest.rotate_left(5) ^ h;
            }
            Err(payload) => {
                let trace = {
                    let st = shared.m.lock().unwrap_or_else(PoisonError::into_inner);
                    st.trace.clone()
                };
                write_artifact(cfg, iteration, &trace, &payload);
                resume_unwind(payload);
            }
        }
    }
    let lock_graph = LockGraph { edges: union };
    if let Some(cycle) = lock_graph.cycle() {
        write_cycle_artifact(cfg, &lock_graph, &cycle);
        let pretty: Vec<String> = cycle.iter().map(|n| n.to_string()).collect();
        panic!(
            "lock-order cycle in scenario `{}` (seed {}): {} — the union of {} \
             held-while-acquiring edges across {} schedules is cyclic; see the \
             lockcycle artifact for per-edge first iterations",
            cfg.name,
            cfg.seed,
            pretty.join(" -> "),
            lock_graph.len(),
            runs
        );
    }
    {
        let mut g = GLOBAL_GRAPH.lock().unwrap_or_else(PoisonError::into_inner);
        for (edge, it) in &lock_graph.edges {
            g.entry(*edge).or_insert(*it);
        }
    }
    Report {
        schedules_run: runs,
        distinct_schedules: distinct.len(),
        controlled,
        digest,
        lock_graph,
    }
}

/// Writes the union-graph cycle report (scenario, seed, cycle, every edge
/// with the iteration that first recorded it) so CI can upload it.
/// Best-effort, like [`write_artifact`].
fn write_cycle_artifact(cfg: &ExploreConfig, graph: &LockGraph, cycle: &[LockNode]) {
    let Some(dir) = &cfg.artifact_dir else { return };
    let pretty: Vec<String> = cycle.iter().map(|n| n.to_string()).collect();
    let mut body = format!(
        "scenario: {}\nseed: {}\nlock-order cycle: {}\n\nunion edges (held -> acquired, \
         first recorded at iteration; that iteration's rng seed is listed for replay):\n",
        cfg.name,
        cfg.seed,
        pretty.join(" -> ")
    );
    for (a, b, it) in graph.edges() {
        let mut s = cfg.seed ^ it.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        splitmix64(&mut s);
        body.push_str(&format!("  {a} -> {b}  (iteration {it}, rng seed {s})\n"));
    }
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(
        dir.join(format!("{}-seed{}-lockcycle.txt", cfg.name, cfg.seed)),
        body,
    );
}

/// Writes the failing schedule (seed, iteration, pick trace, message) so CI
/// can upload it as an artifact. Best-effort: IO errors are ignored —
/// the panic that is about to propagate matters more.
fn write_artifact(
    cfg: &ExploreConfig,
    iteration: usize,
    trace: &[u32],
    payload: &Box<dyn Any + Send>,
) {
    let Some(dir) = &cfg.artifact_dir else { return };
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "<non-string panic payload>".to_string());
    let body = format!(
        "scenario: {}\nseed: {}\niteration: {}\nschedule (thread picked at each step): {:?}\npanic: {}\n\nreproduce: rerun the same test with the same seed; \
         schedule {iteration} of this exploration is the failing interleaving.\n",
        cfg.name, cfg.seed, iteration, trace, msg
    );
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(
        dir.join(format!(
            "{}-seed{}-iter{}.txt",
            cfg.name, cfg.seed, iteration
        )),
        body,
    );
}

pub mod sync {
    //! Scheduler-aware synchronization primitives.
    //!
    //! API-compatible with the `parking_lot` shim (`lock()` returns the
    //! guard directly, no poisoning) plus the std atomics the workspace
    //! uses. On a controlled thread every acquisition and atomic operation
    //! is a scheduling point; elsewhere they behave exactly like the real
    //! primitives.

    use super::{
        current_ctx, fresh_lock_id, note_acquire, register_lock, yield_point, Blocker, Ctx,
        LockKind, Status,
    };
    use std::sync::PoisonError;

    pub use std::sync::atomic::Ordering;

    /// Tells the explorer the calling thread wants `blocker`; returns once
    /// granted. No-op off controlled threads.
    fn acquire(ctx: &Option<Ctx>, blocker: Blocker) {
        if let Some(ctx) = ctx {
            ctx.park(Status::Blocked(blocker), true);
        }
    }

    /// Model-release bookkeeping attached to a guard; runs after the real
    /// guard unlocks (field order in the guard structs guarantees this).
    struct Release {
        ctx: Option<Ctx>,
        id: u64,
        shared_mode: bool,
    }

    impl Drop for Release {
        fn drop(&mut self) {
            if let Some(ctx) = &self.ctx {
                if self.shared_mode {
                    ctx.release_read(self.id);
                } else {
                    ctx.release_write(self.id);
                }
            }
        }
    }

    /// A mutual-exclusion lock that doubles as a model-checker scheduling
    /// point. `lock()` never returns a poison error.
    #[derive(Debug)]
    pub struct Mutex<T: ?Sized> {
        id: u64,
        inner: std::sync::Mutex<T>,
    }

    // Manual impl: a derived Default would zero the id, aliasing every
    // default-constructed mutex to one model lock (false self-deadlocks).
    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    /// Guard returned by [`Mutex::lock`].
    pub struct MutexGuard<'a, T: ?Sized> {
        guard: std::sync::MutexGuard<'a, T>,
        _release: Release,
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.guard
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.guard
        }
    }

    impl<T> Mutex<T> {
        /// Creates a mutex protecting `value`. On a controlled thread the
        /// lock is registered in the run's acquisition graph.
        pub fn new(value: T) -> Self {
            let id = fresh_lock_id();
            register_lock(id, LockKind::Mutex);
            Mutex {
                id,
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Consumes the mutex, returning the protected value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock; on a controlled thread this is a scheduling
        /// point and the model grants exclusivity before the real lock is
        /// taken (uncontended by construction).
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let ctx = current_ctx();
            acquire(&ctx, Blocker::Lock(self.id));
            MutexGuard {
                guard: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
                _release: Release {
                    ctx,
                    id: self.id,
                    shared_mode: false,
                },
            }
        }

        /// Attempts to acquire without blocking (a scheduling point, but
        /// never a blocking one, on controlled threads).
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            let ctx = current_ctx();
            if let Some(c) = &ctx {
                c.park(Status::Ready, true);
                let mut st = c.shared.m.lock().unwrap_or_else(PoisonError::into_inner);
                let l = st.locks.entry(self.id).or_default();
                if l.writer || l.readers > 0 {
                    return None;
                }
                l.writer = true;
                note_acquire(&mut st, c.tid, self.id, LockKind::Mutex);
            }
            let guard = match self.inner.try_lock() {
                Ok(g) => Some(g),
                Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
                Err(std::sync::TryLockError::WouldBlock) => None,
            };
            match guard {
                Some(guard) => Some(MutexGuard {
                    guard,
                    _release: Release {
                        ctx,
                        id: self.id,
                        shared_mode: false,
                    },
                }),
                None => {
                    // Model said free but the real lock is held: only
                    // possible with uncontrolled threads in the mix; undo
                    // the model claim.
                    if let Some(c) = &ctx {
                        c.release_write(self.id);
                    }
                    None
                }
            }
        }

        /// Mutable access without locking (requires exclusive borrow).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// A reader-writer lock that doubles as a model-checker scheduling
    /// point. Accessors never return poison errors.
    #[derive(Debug)]
    pub struct RwLock<T: ?Sized> {
        id: u64,
        inner: std::sync::RwLock<T>,
    }

    // Manual impl for the same reason as `Mutex`: the id must be fresh.
    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    /// Guard returned by [`RwLock::read`].
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        guard: std::sync::RwLockReadGuard<'a, T>,
        _release: Release,
    }

    impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.guard
        }
    }

    /// Guard returned by [`RwLock::write`].
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        guard: std::sync::RwLockWriteGuard<'a, T>,
        _release: Release,
    }

    impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.guard
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.guard
        }
    }

    impl<T> RwLock<T> {
        /// Creates a lock protecting `value`. On a controlled thread the
        /// lock is registered in the run's acquisition graph.
        pub fn new(value: T) -> Self {
            let id = fresh_lock_id();
            register_lock(id, LockKind::RwLock);
            RwLock {
                id,
                inner: std::sync::RwLock::new(value),
            }
        }

        /// Consumes the lock, returning the protected value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires shared read access (a scheduling point; runnable while
        /// no writer holds the model lock, so reads overlap).
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            let ctx = current_ctx();
            acquire(&ctx, Blocker::Read(self.id));
            RwLockReadGuard {
                guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
                _release: Release {
                    ctx,
                    id: self.id,
                    shared_mode: true,
                },
            }
        }

        /// Acquires exclusive write access (a scheduling point; runnable
        /// only when no reader or writer holds the model lock).
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            let ctx = current_ctx();
            acquire(&ctx, Blocker::Write(self.id));
            RwLockWriteGuard {
                guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
                _release: Release {
                    ctx,
                    id: self.id,
                    shared_mode: false,
                },
            }
        }

        /// Mutable access without locking (requires exclusive borrow).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
        }
    }

    macro_rules! scheduled_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Scheduler-aware atomic: every operation is a scheduling
            /// point on a controlled thread, then delegates to `std`.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates an atomic with the given initial value.
                pub fn new(v: $prim) -> Self {
                    Self {
                        inner: <$std>::new(v),
                    }
                }

                /// Atomic load (a scheduling point on controlled threads).
                pub fn load(&self, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.load(order)
                }

                /// Atomic store (a scheduling point on controlled threads).
                pub fn store(&self, v: $prim, order: Ordering) {
                    yield_point();
                    self.inner.store(v, order)
                }

                /// Mutable access without synchronization.
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.inner.get_mut()
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }
            }
        };
    }

    scheduled_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    scheduled_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    scheduled_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    impl AtomicU64 {
        /// Atomic add returning the previous value (a scheduling point on
        /// controlled threads).
        pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
            yield_point();
            self.inner.fetch_add(v, order)
        }

        /// Atomic subtract returning the previous value (a scheduling
        /// point on controlled threads).
        pub fn fetch_sub(&self, v: u64, order: Ordering) -> u64 {
            yield_point();
            self.inner.fetch_sub(v, order)
        }
    }

    impl AtomicUsize {
        /// Atomic add returning the previous value (a scheduling point on
        /// controlled threads).
        pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
            yield_point();
            self.inner.fetch_add(v, order)
        }

        /// Atomic subtract returning the previous value (a scheduling
        /// point on controlled threads).
        pub fn fetch_sub(&self, v: usize, order: Ordering) -> usize {
            yield_point();
            self.inner.fetch_sub(v, order)
        }
    }
}

pub mod thread {
    //! Controlled thread spawning for [`explore`](super::explore) scenarios.

    use super::{current_ctx, spawn_controlled, Blocker, Status};
    use std::sync::{Arc, Mutex as StdMutex, PoisonError};

    /// Handle to a spawned thread; see [`spawn`].
    pub struct JoinHandle<T> {
        slot: Arc<StdMutex<Option<T>>>,
        /// Set when the thread is scheduler-controlled.
        target: Option<usize>,
        /// Set when the thread is a plain std thread (no active explorer).
        std_handle: Option<std::thread::JoinHandle<()>>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread and returns its result.
        ///
        /// # Panics
        /// Panics if the joined thread panicked (mirroring
        /// `std::thread::JoinHandle::join().unwrap()`).
        pub fn join(self) -> T {
            if let Some(target) = self.target {
                let ctx = current_ctx()
                    .expect("controlled JoinHandle joined from an uncontrolled thread");
                ctx.park(Status::Blocked(Blocker::Join(target)), false);
            } else if let Some(h) = self.std_handle {
                h.join().expect("joined thread panicked");
            }
            self.slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .expect("joined thread panicked")
        }
    }

    /// Yields the calling thread: a pure scheduling point when controlled
    /// by an explorer, `std::thread::yield_now` otherwise. The facade's
    /// `sleep_ms` maps to this under `--cfg asb_schedule`, where there is
    /// no wall clock to sleep against.
    pub fn yield_now() {
        match current_ctx() {
            Some(ctx) => ctx.park(Status::Ready, true),
            None => std::thread::yield_now(),
        }
    }

    /// Spawns `f`. Inside an [`explore`](super::explore) scenario the new
    /// thread is scheduler-controlled (it parks at every scheduling point);
    /// outside one this is a plain `std::thread::spawn`.
    pub fn spawn<T, F>(f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let slot = Arc::new(StdMutex::new(None));
        match current_ctx() {
            Some(ctx) => {
                let tid = spawn_controlled(&ctx.shared, Arc::clone(&slot), f);
                JoinHandle {
                    slot,
                    target: Some(tid),
                    std_handle: None,
                }
            }
            None => {
                let their_slot = Arc::clone(&slot);
                let h = std::thread::spawn(move || {
                    let v = f();
                    *their_slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                });
                JoinHandle {
                    slot,
                    target: None,
                    std_handle: Some(h),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{AtomicUsize, Mutex, Ordering, RwLock};
    use super::*;

    fn quick(name: &'static str, seed: u64) -> ExploreConfig {
        ExploreConfig {
            name,
            seed,
            target_distinct: 50,
            max_schedules: 400,
            artifact_dir: None,
        }
    }

    #[test]
    fn default_constructed_locks_are_distinct_model_locks() {
        // Regression: a derived Default once gave every default-built lock
        // id 0, so holding one while taking another looked like a
        // self-deadlock to the model.
        let report = explore(&quick("default-lock-ids", 11), || {
            let a: Mutex<u32> = Mutex::default();
            let b: Mutex<u32> = Mutex::default();
            let l: RwLock<u32> = RwLock::default();
            let ga = a.lock();
            let gb = b.lock();
            let gl = l.read();
            assert_eq!(*ga + *gb + *gl, 0);
        });
        assert!(report.schedules_run > 0);
    }

    #[test]
    fn primitives_work_outside_exploration() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        let a = AtomicUsize::new(0);
        a.fetch_add(3, Ordering::SeqCst);
        assert_eq!(a.load(Ordering::SeqCst), 3);
        let h = thread::spawn(|| 7);
        assert_eq!(h.join(), 7);
    }

    #[test]
    fn counter_increments_are_never_lost() {
        let report = explore(&quick("counter", 42), || {
            let n = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        for _ in 0..5 {
                            *n.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*n.lock(), 10);
        });
        assert!(report.schedules_run > 0);
        assert!(report.distinct_schedules >= 1);
    }

    #[test]
    fn same_seed_same_schedules() {
        fn run() -> Report {
            explore(&quick("digest", 7), || {
                let n = Arc::new(Mutex::new(0u64));
                let handles: Vec<_> = (0..3)
                    .map(|i| {
                        let n = Arc::clone(&n);
                        thread::spawn(move || {
                            *n.lock() += i;
                        })
                    })
                    .collect();
                for h in handles {
                    h.join();
                }
            })
        }
        let a = run();
        let b = run();
        assert_eq!(a, b, "exploration must be a pure function of the seed");
    }

    #[test]
    fn controlled_mode_explores_many_interleavings() {
        let report = explore(&quick("many", 3), || {
            let n = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        for _ in 0..8 {
                            *n.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
        });
        if report.controlled {
            assert!(
                report.distinct_schedules >= 50,
                "lock-granular control must reach the distinct-schedule target, got {}",
                report.distinct_schedules
            );
        }
    }

    #[test]
    #[should_panic(expected = "lost update")]
    fn broken_invariant_is_caught_and_propagated() {
        explore(&quick("broken", 11), || {
            let n = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        // Deliberate read-modify-write race modelled at the
                        // application level: read, drop the lock, write.
                        let v = *n.lock();
                        *n.lock() = v + 1;
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*n.lock(), 2, "lost update");
        });
    }

    #[test]
    fn rwlock_readers_overlap_and_writers_exclude() {
        let report = explore(&quick("rw", 5), || {
            let l = Arc::new(RwLock::new(0u64));
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let l = Arc::clone(&l);
                    thread::spawn(move || *l.read())
                })
                .collect();
            let w = {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    *l.write() += 1;
                })
            };
            for r in readers {
                let v = r.join();
                assert!(v == 0 || v == 1);
            }
            w.join();
            assert_eq!(*l.read(), 1);
        });
        assert!(report.schedules_run > 0);
    }

    #[test]
    fn atomics_are_scheduling_points_but_stay_atomic() {
        explore(&quick("atomic", 9), || {
            let a = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let a = Arc::clone(&a);
                    thread::spawn(move || {
                        for _ in 0..4 {
                            a.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(
                a.load(Ordering::SeqCst),
                8,
                "fetch_add must never lose updates"
            );
        });
    }

    #[test]
    fn ordered_foreign_acquisitions_build_a_deterministic_acyclic_graph() {
        fn run() -> Report {
            explore(&quick("ordered-graph", 21), || {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(RwLock::new(0u8));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t1 = thread::spawn(move || {
                    let _ga = a2.lock();
                    let _gb = b2.write();
                });
                let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
                let t2 = thread::spawn(move || {
                    let _ga = a3.lock();
                    let _gb = b3.read();
                });
                t1.join();
                t2.join();
            })
        }
        let r1 = run();
        let r2 = run();
        assert_eq!(
            r1, r2,
            "the union graph must be a pure function of the seed"
        );
        assert!(r1.lock_graph.cycle().is_none());
        if r1.controlled {
            let edges: Vec<_> = r1.lock_graph.edges().collect();
            assert_eq!(
                edges,
                vec![(
                    LockNode {
                        kind: LockKind::Mutex,
                        index: 0
                    },
                    LockNode {
                        kind: LockKind::RwLock,
                        index: 1
                    },
                    0
                )],
                "both workers acquire the rwlock while holding the mutex"
            );
        }
    }

    #[test]
    fn creator_private_locks_record_no_edges() {
        // A thread that creates a lock and is the only one to ever take it
        // (the single-flight latch pattern) must not contribute edges, even
        // while holding other locks.
        let report = explore(&quick("private-locks", 13), || {
            let outer = Arc::new(Mutex::new(()));
            let o2 = Arc::clone(&outer);
            thread::spawn(move || {
                let _g = o2.lock();
                let latch = Mutex::new(());
                let _l = latch.lock();
            })
            .join();
        });
        assert!(
            report.lock_graph.is_empty(),
            "creator-private acquisitions leaked edges: {:?}",
            report.lock_graph
        );
    }

    #[test]
    fn sequential_inversion_is_caught_by_the_union_graph() {
        // The two inverted acquisitions run strictly one after the other
        // (joined in between), so no single schedule can deadlock — only
        // the cross-schedule union exposes the cycle.
        let dir = std::env::temp_dir().join("asb-schedule-lockcycle-test");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ExploreConfig {
            name: "seq-inversion",
            seed: 5,
            target_distinct: 20,
            max_schedules: 60,
            artifact_dir: Some(dir.clone()),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            explore(&cfg, || {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                thread::spawn(move || {
                    let _ga = a2.lock();
                    let _gb = b2.lock();
                })
                .join();
                let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
                thread::spawn(move || {
                    let _gb = b3.lock();
                    let _ga = a3.lock();
                })
                .join();
            })
        }));
        let payload = outcome.expect_err("the union cycle must fail the exploration");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("lock-order cycle"),
            "expected a lock-order cycle panic, got: {msg}"
        );
        let artifact = dir.join("seq-inversion-seed5-lockcycle.txt");
        let body = std::fs::read_to_string(&artifact)
            .expect("cycle artifact must be written next to schedule artifacts");
        assert!(body.contains("seed: 5"), "artifact must carry the seed");
        assert!(
            body.contains("lock-order cycle:") && body.contains("iteration"),
            "artifact must list the cycle and per-edge first iterations:\n{body}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn global_lock_graph_unions_completed_explorations() {
        let report = explore(&quick("global-union", 17), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            })
            .join();
            let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                let _ga = a3.lock();
                let _gb = b3.lock();
            })
            .join();
        });
        if report.controlled {
            assert!(!report.lock_graph.is_empty());
        }
        let global = lock_graph();
        for (a, b, _) in report.lock_graph.edges() {
            assert!(
                global.edges().any(|(ga, gb, _)| (ga, gb) == (a, b)),
                "every per-exploration edge must appear in the global union"
            );
        }
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn lock_order_inversion_is_reported_as_deadlock() {
        explore(
            &ExploreConfig {
                name: "deadlock",
                seed: 1,
                target_distinct: 200,
                max_schedules: 2000,
                artifact_dir: None,
            },
            || {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t1 = thread::spawn(move || {
                    let _ga = a2.lock();
                    let _gb = b2.lock();
                });
                let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
                let t2 = thread::spawn(move || {
                    let _gb = b3.lock();
                    let _ga = a3.lock();
                });
                t1.join();
                t2.join();
            },
        );
    }
}
