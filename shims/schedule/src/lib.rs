//! Deterministic cooperative scheduler for model-checking concurrent code.
//!
//! This crate is the engine behind the workspace's `asb_schedule` build
//! mode: the sync facade in `asb-storage` (re-exported as `asb_core::sync`)
//! compiles to the [`sync`] primitives defined here, and a test scenario
//! run under [`explore`] has every lock acquisition and atomic operation
//! turned into a *scheduling point*. Only one controlled thread runs at a
//! time; at every scheduling point the explorer picks which runnable thread
//! proceeds, so repeated runs enumerate bounded thread interleavings —
//! a loom-style model checker small enough to live in-tree and built from
//! nothing but `std`.
//!
//! # How control works
//!
//! [`explore`] runs a scenario closure once per *schedule*. Each run spawns
//! the closure on a fresh controlled root thread; the closure spawns more
//! controlled threads with [`thread::spawn`]. Controlled threads park at
//! every scheduling point (spawn, lock acquire, atomic op, join, exit) and
//! the explorer — holding a seeded deterministic PRNG — picks the next
//! thread among those that are *runnable* (not blocked on a held lock, a
//! busy rwlock, or an unfinished join target). The sequence of picks is the
//! schedule; its hash identifies the interleaving, and exploration stops
//! once a target number of distinct schedules has been observed (or a
//! budget of runs is exhausted).
//!
//! Determinism: schedule `i` of an exploration seeded `s` draws every pick
//! from `splitmix64(s, i)`. The same seed explores the same schedules in
//! the same order, so a failure reproduces exactly — the failing pick
//! sequence is also written to an artifact file for CI to upload.
//!
//! # Outside an exploration
//!
//! Every primitive here falls back to plain `std` behaviour when the
//! current thread is not controlled (no thread-local scheduler context), so
//! a workspace compiled with `--cfg asb_schedule` still runs its ordinary
//! tests correctly — only threads spawned inside [`explore`] are scheduled.
//!
//! Deadlocks are detected (no runnable thread while some are still blocked)
//! and reported as a panic carrying the schedule trace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};

/// SplitMix64 step: the deterministic PRNG driving schedule choices.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a choice trace: the schedule's identity hash.
fn fnv1a(trace: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in trace {
        for b in c.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Source of unique ids for model-tracked locks.
static NEXT_LOCK_ID: AtomicU64 = AtomicU64::new(0);

fn fresh_lock_id() -> u64 {
    NEXT_LOCK_ID.fetch_add(1, StdOrdering::Relaxed)
}

/// Why a parked thread cannot run yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocker {
    /// Wants a mutex.
    Lock(u64),
    /// Wants shared access to a rwlock.
    Read(u64),
    /// Wants exclusive access to a rwlock.
    Write(u64),
    /// Waiting for thread `tid` to finish.
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Parked at a pure scheduling point; can run whenever picked.
    Ready,
    /// Parked waiting for a resource.
    Blocked(Blocker),
    /// Currently executing (at most one thread at a time).
    Running,
    /// Body returned (or panicked); never scheduled again.
    Done,
}

#[derive(Debug, Default)]
struct LockState {
    writer: bool,
    readers: usize,
}

struct State {
    threads: Vec<Status>,
    locks: HashMap<u64, LockState>,
    /// Index of the thread currently Running, if any.
    running: Option<usize>,
    /// The schedule so far: which thread was picked at each step.
    trace: Vec<u32>,
    /// Scheduling points contributed by sync primitives (not by
    /// spawn/join/exit). Zero means the facade compiled to real locks.
    sync_points: u64,
    /// First panic payload raised by a controlled thread.
    panic: Option<Box<dyn Any + Send>>,
}

struct Shared {
    m: StdMutex<State>,
    cv: Condvar,
}

impl Shared {
    fn new() -> Arc<Self> {
        Arc::new(Shared {
            m: StdMutex::new(State {
                threads: Vec::new(),
                locks: HashMap::new(),
                running: None,
                trace: Vec::new(),
                sync_points: 0,
                panic: None,
            }),
            cv: Condvar::new(),
        })
    }
}

/// Per-thread scheduler handle (present only on controlled threads).
#[derive(Clone)]
struct Ctx {
    shared: Arc<Shared>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

impl Ctx {
    /// Parks the calling thread at a scheduling point and blocks until the
    /// explorer picks it again. `status` is `Ready` for a pure yield or
    /// `Blocked` when a resource is wanted — the explorer performs the
    /// grant bookkeeping before waking the thread.
    fn park(&self, status: Status, is_sync_point: bool) {
        let mut st = self.shared.m.lock().unwrap_or_else(PoisonError::into_inner);
        st.threads[self.tid] = status;
        st.running = None;
        if is_sync_point {
            st.sync_points += 1;
        }
        self.shared.cv.notify_all();
        while st.threads[self.tid] != Status::Running {
            st = self
                .shared
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Releases a model lock (mutex or rwlock-writer). Never blocks.
    fn release_write(&self, id: u64) {
        let mut st = self.shared.m.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(l) = st.locks.get_mut(&id) {
            l.writer = false;
        }
        self.shared.cv.notify_all();
    }

    /// Releases one shared (reader) hold of a model rwlock. Never blocks.
    fn release_read(&self, id: u64) {
        let mut st = self.shared.m.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(l) = st.locks.get_mut(&id) {
            l.readers = l.readers.saturating_sub(1);
        }
        self.shared.cv.notify_all();
    }
}

/// Marks the calling thread's next action as a scheduling point if it is
/// controlled; no-op otherwise.
fn yield_point() {
    if let Some(ctx) = current_ctx() {
        ctx.park(Status::Ready, true);
    }
}

/// Registers and starts a controlled thread running `f`. The thread parks
/// immediately and runs only when the explorer schedules it.
fn spawn_controlled<T, F>(shared: &Arc<Shared>, slot: Arc<StdMutex<Option<T>>>, f: F) -> usize
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let tid = {
        let mut st = shared.m.lock().unwrap_or_else(PoisonError::into_inner);
        st.threads.push(Status::Ready);
        st.threads.len() - 1
    };
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        let ctx = Ctx {
            shared: Arc::clone(&shared),
            tid,
        };
        CTX.with(|c| *c.borrow_mut() = Some(ctx));
        // Wait to be scheduled for the first time.
        {
            let mut st = shared.m.lock().unwrap_or_else(PoisonError::into_inner);
            while st.threads[tid] != Status::Running {
                st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(f));
        let mut st = shared.m.lock().unwrap_or_else(PoisonError::into_inner);
        match outcome {
            Ok(value) => {
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
            }
            Err(payload) => {
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
            }
        }
        st.threads[tid] = Status::Done;
        st.running = None;
        shared.cv.notify_all();
    });
    tid
}

/// Whether a parked thread could run right now.
fn is_runnable(st: &State, tid: usize) -> bool {
    match st.threads[tid] {
        Status::Ready => true,
        Status::Blocked(Blocker::Lock(id)) | Status::Blocked(Blocker::Write(id)) => {
            match st.locks.get(&id) {
                Some(l) => !l.writer && l.readers == 0,
                None => true,
            }
        }
        Status::Blocked(Blocker::Read(id)) => match st.locks.get(&id) {
            Some(l) => !l.writer,
            None => true,
        },
        Status::Blocked(Blocker::Join(target)) => st.threads[target] == Status::Done,
        Status::Running | Status::Done => false,
    }
}

/// Runs one schedule to completion: repeatedly waits for the running
/// thread to park, then picks and grants the next runnable thread.
fn drive_schedule(shared: &Arc<Shared>, mut rng: u64) -> Result<Vec<u32>, Box<dyn Any + Send>> {
    loop {
        let mut st = shared.m.lock().unwrap_or_else(PoisonError::into_inner);
        while st.running.is_some() {
            st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if let Some(payload) = st.panic.take() {
            return Err(payload);
        }
        let runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&t| is_runnable(&st, t))
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|&t| t == Status::Done) {
                return Ok(std::mem::take(&mut st.trace));
            }
            let blocked: Vec<usize> = (0..st.threads.len())
                .filter(|&t| matches!(st.threads[t], Status::Blocked(_)))
                .collect();
            return Err(Box::new(format!(
                "deadlock: threads {blocked:?} blocked with no runnable thread (trace: {:?})",
                st.trace
            )));
        }
        let pick = runnable[(splitmix64(&mut rng) % runnable.len() as u64) as usize];
        // Grant the resource the picked thread was waiting for.
        match st.threads[pick] {
            Status::Blocked(Blocker::Lock(id)) | Status::Blocked(Blocker::Write(id)) => {
                st.locks.entry(id).or_default().writer = true;
            }
            Status::Blocked(Blocker::Read(id)) => {
                st.locks.entry(id).or_default().readers += 1;
            }
            _ => {}
        }
        st.trace.push(pick as u32);
        st.threads[pick] = Status::Running;
        st.running = Some(pick);
        shared.cv.notify_all();
    }
}

/// Exploration parameters. See [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Scenario name (used in artifact file names and failure messages).
    pub name: &'static str,
    /// Base seed: the whole exploration is a pure function of it.
    pub seed: u64,
    /// Stop once this many *distinct* schedules have been observed.
    pub target_distinct: usize,
    /// Hard budget of schedule runs (bounds wall-clock time even when the
    /// schedule space is smaller than `target_distinct`).
    pub max_schedules: usize,
    /// Where to write the failing-schedule artifact (`None` disables).
    pub artifact_dir: Option<std::path::PathBuf>,
}

impl ExploreConfig {
    /// Defaults sized for CI: 1000 distinct schedules, 4000-run budget,
    /// artifacts under `target/schedule-artifacts/`.
    pub fn new(name: &'static str, seed: u64) -> Self {
        ExploreConfig {
            name,
            seed,
            target_distinct: 1000,
            max_schedules: 4000,
            artifact_dir: Some(std::path::PathBuf::from("target/schedule-artifacts")),
        }
    }
}

/// What an exploration did. Returned by [`explore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Schedule runs executed.
    pub schedules_run: usize,
    /// Distinct schedules (unique pick sequences) observed.
    pub distinct_schedules: usize,
    /// Whether sync primitives contributed scheduling points. `false`
    /// means the facade compiled to real locks (no `--cfg asb_schedule`):
    /// runs are still deterministic whole-thread permutations, but
    /// fine-grained interleavings were not explored.
    pub controlled: bool,
    /// Order-sensitive digest of every schedule hash: two explorations
    /// with the same seed must produce the same digest.
    pub digest: u64,
}

/// Explores bounded interleavings of `scenario`, which must spawn its
/// concurrent work through [`thread::spawn`].
///
/// The scenario runs once per schedule on a fresh controlled thread; any
/// panic (assertion failure, deadlock report) aborts the exploration,
/// writes the failing schedule to the artifact directory, and re-raises the
/// panic on the calling thread — so `#[should_panic]` tests compose.
///
/// # Panics
/// Re-raises the first scenario panic, and panics on detected deadlock.
pub fn explore<F>(cfg: &ExploreConfig, scenario: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let scenario = Arc::new(scenario);
    let mut distinct: HashSet<u64> = HashSet::new();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut runs = 0usize;
    let mut controlled = false;
    for iteration in 0..cfg.max_schedules {
        if distinct.len() >= cfg.target_distinct {
            break;
        }
        let shared = Shared::new();
        let slot = Arc::new(StdMutex::new(None::<()>));
        let body = Arc::clone(&scenario);
        spawn_controlled(&shared, slot, move || body());
        let mut seed = cfg.seed ^ (iteration as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        splitmix64(&mut seed);
        let outcome = drive_schedule(&shared, seed);
        runs += 1;
        let st = shared.m.lock().unwrap_or_else(PoisonError::into_inner);
        if st.sync_points > 0 {
            controlled = true;
        }
        drop(st);
        match outcome {
            Ok(trace) => {
                let h = fnv1a(&trace);
                distinct.insert(h);
                digest = digest.rotate_left(5) ^ h;
            }
            Err(payload) => {
                let trace = {
                    let st = shared.m.lock().unwrap_or_else(PoisonError::into_inner);
                    st.trace.clone()
                };
                write_artifact(cfg, iteration, &trace, &payload);
                resume_unwind(payload);
            }
        }
    }
    Report {
        schedules_run: runs,
        distinct_schedules: distinct.len(),
        controlled,
        digest,
    }
}

/// Writes the failing schedule (seed, iteration, pick trace, message) so CI
/// can upload it as an artifact. Best-effort: IO errors are ignored —
/// the panic that is about to propagate matters more.
fn write_artifact(
    cfg: &ExploreConfig,
    iteration: usize,
    trace: &[u32],
    payload: &Box<dyn Any + Send>,
) {
    let Some(dir) = &cfg.artifact_dir else { return };
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "<non-string panic payload>".to_string());
    let body = format!(
        "scenario: {}\nseed: {}\niteration: {}\nschedule (thread picked at each step): {:?}\npanic: {}\n\nreproduce: rerun the same test with the same seed; \
         schedule {iteration} of this exploration is the failing interleaving.\n",
        cfg.name, cfg.seed, iteration, trace, msg
    );
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(
        dir.join(format!(
            "{}-seed{}-iter{}.txt",
            cfg.name, cfg.seed, iteration
        )),
        body,
    );
}

pub mod sync {
    //! Scheduler-aware synchronization primitives.
    //!
    //! API-compatible with the `parking_lot` shim (`lock()` returns the
    //! guard directly, no poisoning) plus the std atomics the workspace
    //! uses. On a controlled thread every acquisition and atomic operation
    //! is a scheduling point; elsewhere they behave exactly like the real
    //! primitives.

    use super::{current_ctx, fresh_lock_id, yield_point, Blocker, Ctx, Status};
    use std::sync::PoisonError;

    pub use std::sync::atomic::Ordering;

    /// Tells the explorer the calling thread wants `blocker`; returns once
    /// granted. No-op off controlled threads.
    fn acquire(ctx: &Option<Ctx>, blocker: Blocker) {
        if let Some(ctx) = ctx {
            ctx.park(Status::Blocked(blocker), true);
        }
    }

    /// Model-release bookkeeping attached to a guard; runs after the real
    /// guard unlocks (field order in the guard structs guarantees this).
    struct Release {
        ctx: Option<Ctx>,
        id: u64,
        shared_mode: bool,
    }

    impl Drop for Release {
        fn drop(&mut self) {
            if let Some(ctx) = &self.ctx {
                if self.shared_mode {
                    ctx.release_read(self.id);
                } else {
                    ctx.release_write(self.id);
                }
            }
        }
    }

    /// A mutual-exclusion lock that doubles as a model-checker scheduling
    /// point. `lock()` never returns a poison error.
    #[derive(Debug)]
    pub struct Mutex<T: ?Sized> {
        id: u64,
        inner: std::sync::Mutex<T>,
    }

    // Manual impl: a derived Default would zero the id, aliasing every
    // default-constructed mutex to one model lock (false self-deadlocks).
    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    /// Guard returned by [`Mutex::lock`].
    pub struct MutexGuard<'a, T: ?Sized> {
        guard: std::sync::MutexGuard<'a, T>,
        _release: Release,
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.guard
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.guard
        }
    }

    impl<T> Mutex<T> {
        /// Creates a mutex protecting `value`.
        pub fn new(value: T) -> Self {
            Mutex {
                id: fresh_lock_id(),
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Consumes the mutex, returning the protected value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock; on a controlled thread this is a scheduling
        /// point and the model grants exclusivity before the real lock is
        /// taken (uncontended by construction).
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let ctx = current_ctx();
            acquire(&ctx, Blocker::Lock(self.id));
            MutexGuard {
                guard: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
                _release: Release {
                    ctx,
                    id: self.id,
                    shared_mode: false,
                },
            }
        }

        /// Attempts to acquire without blocking (a scheduling point, but
        /// never a blocking one, on controlled threads).
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            let ctx = current_ctx();
            if let Some(c) = &ctx {
                c.park(Status::Ready, true);
                let mut st = c.shared.m.lock().unwrap_or_else(PoisonError::into_inner);
                let l = st.locks.entry(self.id).or_default();
                if l.writer || l.readers > 0 {
                    return None;
                }
                l.writer = true;
            }
            let guard = match self.inner.try_lock() {
                Ok(g) => Some(g),
                Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
                Err(std::sync::TryLockError::WouldBlock) => None,
            };
            match guard {
                Some(guard) => Some(MutexGuard {
                    guard,
                    _release: Release {
                        ctx,
                        id: self.id,
                        shared_mode: false,
                    },
                }),
                None => {
                    // Model said free but the real lock is held: only
                    // possible with uncontrolled threads in the mix; undo
                    // the model claim.
                    if let Some(c) = &ctx {
                        c.release_write(self.id);
                    }
                    None
                }
            }
        }

        /// Mutable access without locking (requires exclusive borrow).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// A reader-writer lock that doubles as a model-checker scheduling
    /// point. Accessors never return poison errors.
    #[derive(Debug)]
    pub struct RwLock<T: ?Sized> {
        id: u64,
        inner: std::sync::RwLock<T>,
    }

    // Manual impl for the same reason as `Mutex`: the id must be fresh.
    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    /// Guard returned by [`RwLock::read`].
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        guard: std::sync::RwLockReadGuard<'a, T>,
        _release: Release,
    }

    impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.guard
        }
    }

    /// Guard returned by [`RwLock::write`].
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        guard: std::sync::RwLockWriteGuard<'a, T>,
        _release: Release,
    }

    impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.guard
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.guard
        }
    }

    impl<T> RwLock<T> {
        /// Creates a lock protecting `value`.
        pub fn new(value: T) -> Self {
            RwLock {
                id: fresh_lock_id(),
                inner: std::sync::RwLock::new(value),
            }
        }

        /// Consumes the lock, returning the protected value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires shared read access (a scheduling point; runnable while
        /// no writer holds the model lock, so reads overlap).
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            let ctx = current_ctx();
            acquire(&ctx, Blocker::Read(self.id));
            RwLockReadGuard {
                guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
                _release: Release {
                    ctx,
                    id: self.id,
                    shared_mode: true,
                },
            }
        }

        /// Acquires exclusive write access (a scheduling point; runnable
        /// only when no reader or writer holds the model lock).
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            let ctx = current_ctx();
            acquire(&ctx, Blocker::Write(self.id));
            RwLockWriteGuard {
                guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
                _release: Release {
                    ctx,
                    id: self.id,
                    shared_mode: false,
                },
            }
        }

        /// Mutable access without locking (requires exclusive borrow).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
        }
    }

    macro_rules! scheduled_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Scheduler-aware atomic: every operation is a scheduling
            /// point on a controlled thread, then delegates to `std`.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates an atomic with the given initial value.
                pub fn new(v: $prim) -> Self {
                    Self {
                        inner: <$std>::new(v),
                    }
                }

                /// Atomic load (a scheduling point on controlled threads).
                pub fn load(&self, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.load(order)
                }

                /// Atomic store (a scheduling point on controlled threads).
                pub fn store(&self, v: $prim, order: Ordering) {
                    yield_point();
                    self.inner.store(v, order)
                }

                /// Mutable access without synchronization.
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.inner.get_mut()
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }
            }
        };
    }

    scheduled_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    scheduled_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    scheduled_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    impl AtomicU64 {
        /// Atomic add returning the previous value (a scheduling point on
        /// controlled threads).
        pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
            yield_point();
            self.inner.fetch_add(v, order)
        }

        /// Atomic subtract returning the previous value (a scheduling
        /// point on controlled threads).
        pub fn fetch_sub(&self, v: u64, order: Ordering) -> u64 {
            yield_point();
            self.inner.fetch_sub(v, order)
        }
    }

    impl AtomicUsize {
        /// Atomic add returning the previous value (a scheduling point on
        /// controlled threads).
        pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
            yield_point();
            self.inner.fetch_add(v, order)
        }

        /// Atomic subtract returning the previous value (a scheduling
        /// point on controlled threads).
        pub fn fetch_sub(&self, v: usize, order: Ordering) -> usize {
            yield_point();
            self.inner.fetch_sub(v, order)
        }
    }
}

pub mod thread {
    //! Controlled thread spawning for [`explore`](super::explore) scenarios.

    use super::{current_ctx, spawn_controlled, Blocker, Status};
    use std::sync::{Arc, Mutex as StdMutex, PoisonError};

    /// Handle to a spawned thread; see [`spawn`].
    pub struct JoinHandle<T> {
        slot: Arc<StdMutex<Option<T>>>,
        /// Set when the thread is scheduler-controlled.
        target: Option<usize>,
        /// Set when the thread is a plain std thread (no active explorer).
        std_handle: Option<std::thread::JoinHandle<()>>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread and returns its result.
        ///
        /// # Panics
        /// Panics if the joined thread panicked (mirroring
        /// `std::thread::JoinHandle::join().unwrap()`).
        pub fn join(self) -> T {
            if let Some(target) = self.target {
                let ctx = current_ctx()
                    .expect("controlled JoinHandle joined from an uncontrolled thread");
                ctx.park(Status::Blocked(Blocker::Join(target)), false);
            } else if let Some(h) = self.std_handle {
                h.join().expect("joined thread panicked");
            }
            self.slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .expect("joined thread panicked")
        }
    }

    /// Yields the calling thread: a pure scheduling point when controlled
    /// by an explorer, `std::thread::yield_now` otherwise. The facade's
    /// `sleep_ms` maps to this under `--cfg asb_schedule`, where there is
    /// no wall clock to sleep against.
    pub fn yield_now() {
        match current_ctx() {
            Some(ctx) => ctx.park(Status::Ready, true),
            None => std::thread::yield_now(),
        }
    }

    /// Spawns `f`. Inside an [`explore`](super::explore) scenario the new
    /// thread is scheduler-controlled (it parks at every scheduling point);
    /// outside one this is a plain `std::thread::spawn`.
    pub fn spawn<T, F>(f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let slot = Arc::new(StdMutex::new(None));
        match current_ctx() {
            Some(ctx) => {
                let tid = spawn_controlled(&ctx.shared, Arc::clone(&slot), f);
                JoinHandle {
                    slot,
                    target: Some(tid),
                    std_handle: None,
                }
            }
            None => {
                let their_slot = Arc::clone(&slot);
                let h = std::thread::spawn(move || {
                    let v = f();
                    *their_slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                });
                JoinHandle {
                    slot,
                    target: None,
                    std_handle: Some(h),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{AtomicUsize, Mutex, Ordering, RwLock};
    use super::*;

    fn quick(name: &'static str, seed: u64) -> ExploreConfig {
        ExploreConfig {
            name,
            seed,
            target_distinct: 50,
            max_schedules: 400,
            artifact_dir: None,
        }
    }

    #[test]
    fn default_constructed_locks_are_distinct_model_locks() {
        // Regression: a derived Default once gave every default-built lock
        // id 0, so holding one while taking another looked like a
        // self-deadlock to the model.
        let report = explore(&quick("default-lock-ids", 11), || {
            let a: Mutex<u32> = Mutex::default();
            let b: Mutex<u32> = Mutex::default();
            let l: RwLock<u32> = RwLock::default();
            let ga = a.lock();
            let gb = b.lock();
            let gl = l.read();
            assert_eq!(*ga + *gb + *gl, 0);
        });
        assert!(report.schedules_run > 0);
    }

    #[test]
    fn primitives_work_outside_exploration() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        let a = AtomicUsize::new(0);
        a.fetch_add(3, Ordering::SeqCst);
        assert_eq!(a.load(Ordering::SeqCst), 3);
        let h = thread::spawn(|| 7);
        assert_eq!(h.join(), 7);
    }

    #[test]
    fn counter_increments_are_never_lost() {
        let report = explore(&quick("counter", 42), || {
            let n = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        for _ in 0..5 {
                            *n.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*n.lock(), 10);
        });
        assert!(report.schedules_run > 0);
        assert!(report.distinct_schedules >= 1);
    }

    #[test]
    fn same_seed_same_schedules() {
        fn run() -> Report {
            explore(&quick("digest", 7), || {
                let n = Arc::new(Mutex::new(0u64));
                let handles: Vec<_> = (0..3)
                    .map(|i| {
                        let n = Arc::clone(&n);
                        thread::spawn(move || {
                            *n.lock() += i;
                        })
                    })
                    .collect();
                for h in handles {
                    h.join();
                }
            })
        }
        let a = run();
        let b = run();
        assert_eq!(a, b, "exploration must be a pure function of the seed");
    }

    #[test]
    fn controlled_mode_explores_many_interleavings() {
        let report = explore(&quick("many", 3), || {
            let n = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        for _ in 0..8 {
                            *n.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
        });
        if report.controlled {
            assert!(
                report.distinct_schedules >= 50,
                "lock-granular control must reach the distinct-schedule target, got {}",
                report.distinct_schedules
            );
        }
    }

    #[test]
    #[should_panic(expected = "lost update")]
    fn broken_invariant_is_caught_and_propagated() {
        explore(&quick("broken", 11), || {
            let n = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        // Deliberate read-modify-write race modelled at the
                        // application level: read, drop the lock, write.
                        let v = *n.lock();
                        *n.lock() = v + 1;
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*n.lock(), 2, "lost update");
        });
    }

    #[test]
    fn rwlock_readers_overlap_and_writers_exclude() {
        let report = explore(&quick("rw", 5), || {
            let l = Arc::new(RwLock::new(0u64));
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let l = Arc::clone(&l);
                    thread::spawn(move || *l.read())
                })
                .collect();
            let w = {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    *l.write() += 1;
                })
            };
            for r in readers {
                let v = r.join();
                assert!(v == 0 || v == 1);
            }
            w.join();
            assert_eq!(*l.read(), 1);
        });
        assert!(report.schedules_run > 0);
    }

    #[test]
    fn atomics_are_scheduling_points_but_stay_atomic() {
        explore(&quick("atomic", 9), || {
            let a = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let a = Arc::clone(&a);
                    thread::spawn(move || {
                        for _ in 0..4 {
                            a.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(
                a.load(Ordering::SeqCst),
                8,
                "fetch_add must never lose updates"
            );
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn lock_order_inversion_is_reported_as_deadlock() {
        explore(
            &ExploreConfig {
                name: "deadlock",
                seed: 1,
                target_distinct: 200,
                max_schedules: 2000,
                artifact_dir: None,
            },
            || {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t1 = thread::spawn(move || {
                    let _ga = a2.lock();
                    let _gb = b2.lock();
                });
                let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
                let t2 = thread::spawn(move || {
                    let _gb = b3.lock();
                    let _ga = a3.lock();
                });
                t1.join();
                t2.join();
            },
        );
    }
}
