//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the std synchronization primitives with `parking_lot`'s API shape:
//! `lock()` returns the guard directly (a poisoned lock is recovered rather
//! than propagated, matching parking_lot's no-poisoning semantics).

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
