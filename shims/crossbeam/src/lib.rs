//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::scope` / `crossbeam::thread::scope` built on
//! `std::thread::scope`. Spawned closures receive a `&Scope` argument like
//! crossbeam's, and `scope()` returns `Result` so call sites can keep the
//! idiomatic `.expect("threads join")`.

#![forbid(unsafe_code)]

/// Scoped-thread API, mirroring `crossbeam::thread`.
pub mod thread {
    /// A handle for spawning threads scoped to a `scope()` call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a scoped thread; `join()` returns the closure's result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, propagating its return value.
        ///
        /// Returns `Err` with the panic payload if the thread panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to the enclosing `scope()` call. The
        /// closure receives the scope handle so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// this returns. A panic in a child is resurfaced as a panic here (so
    /// the `Ok` result means every thread completed), matching how the
    /// call sites use `.expect("threads join")`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::scope(|scope| {
            let handles: Vec<_> = (0..4).map(|i| scope.spawn(move |_| data[i] * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .expect("threads join");
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_via_passed_scope() {
        let n = crate::scope(|scope| {
            let h = scope.spawn(|inner| inner.spawn(|_| 7).join().unwrap());
            h.join().unwrap()
        })
        .expect("threads join");
        assert_eq!(n, 7);
    }
}
