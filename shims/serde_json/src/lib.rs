//! Offline stand-in for the `serde_json` crate.
//!
//! Converts between JSON text and the shim `serde` crate's [`Value`] data
//! model: `to_string` / `to_string_pretty` render a `Serialize` type,
//! `from_str` parses and rebuilds a `Deserialize` type.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Error produced by JSON encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::deserialize(&value)?)
}

// ---- writer --------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that round-trips,
                // always with a decimal point or exponent.
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON has no NaN/Infinity; null is serde_json's lossy default.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let c = rest
                .first()
                .copied()
                .ok_or_else(|| Error::new("unterminated string"))?;
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| Error::new("bad escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let ch = text.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(n) = digits.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(n) {
                        return Ok(Value::I64(-neg));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
        assert_eq!(from_str::<String>(r#""aAb""#).unwrap(), "aAb");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(String, f64)> = vec![("a".into(), 0.25), ("b".into(), 3.0)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"[["a",0.25],["b",3.0]]"#);
        let back: Vec<(String, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);

        let opt: Option<Vec<u32>> = Some(vec![1, 2]);
        let back2: Option<Vec<u32>> = from_str(&to_string(&opt).unwrap()).unwrap();
        assert_eq!(back2, opt);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v = Value::Object(vec![
            ("x".to_string(), Value::U64(1)),
            (
                "y".to_string(),
                Value::Array(vec![Value::Bool(false), Value::Null]),
            ),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"x\": 1"));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_shortest_roundtrip() {
        for &f in &[0.1f64, 1.0, 1e300, -2.5e-9, 0.047] {
            let back: f64 = from_str(&to_string(&f).unwrap()).unwrap();
            assert_eq!(back, f);
        }
    }
}
