//! Offline stand-in for the `rand` crate.
//!
//! [`StdRng`] is a xoshiro256++ generator seeded through SplitMix64 — a
//! high-quality, deterministic PRNG sufficient for the statistical tests in
//! this workspace. Implements the subset of the `rand 0.8` API in use:
//! `Rng::gen`, `Rng::gen_range`, `SeedableRng::seed_from_u64`, plus the
//! `rngs` and `distributions` module paths.

#![forbid(unsafe_code)]

/// A source of random 64-bit words; object-safe base trait.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly via [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one value from the generator.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience extension over [`RngCore`]: the user-facing sampling API.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<Rang: SampleRange>(&mut self, range: Rang) -> Rang::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Generator implementations, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// Distribution abstraction, mirroring `rand::distributions`.
pub mod distributions {
    use crate::RngCore;

    /// A probability distribution samplable with any generator.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard uniform distribution (`rng.gen()` equivalent).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl<T: crate::StandardSample> Distribution<T> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_standard(rng)
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let n = rng.gen_range(3..10usize);
            assert!((3..10).contains(&n));
            let m = rng.gen_range(0u32..=u32::MAX);
            let _ = m;
            let x = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn mean_is_reasonable() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }
}
