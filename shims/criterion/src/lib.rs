//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the `criterion_group!`/`criterion_main!`/`benchmark_group`/
//! `bench_function` surface, but measures with a simple fixed-sample
//! wall-clock loop and prints mean time per iteration. `--test` (passed by
//! `cargo test --benches`) runs each routine once for smoke coverage.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box, used to defeat dead-code elimination.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; only a hint in this stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; many per batch.
    SmallInput,
    /// Large per-iteration inputs; few per batch.
    LargeInput,
    /// Fresh setup for every routine call.
    PerIteration,
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher {
    /// Number of timed iterations per sample (1 in `--test` mode).
    iterations: u64,
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, called `iterations` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.last_mean = Some(start.elapsed() / self.iterations as u32);
    }

    /// Times `routine` on inputs produced by `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.last_mean = Some(total / self.iterations as u32);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time; accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let iterations = if self.criterion.test_mode {
            1
        } else {
            self.sample_size as u64
        };
        let mut bencher = Bencher {
            iterations,
            last_mean: None,
        };
        f(&mut bencher);
        match bencher.last_mean {
            Some(mean) => println!("bench: {}/{id} ... {mean:>12.3?}/iter", self.name),
            None => println!("bench: {}/{id} ... no measurement", self.name),
        }
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver handed to every target function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// Reads the CLI arguments `cargo bench`/`cargo test --benches` pass:
    /// `--test` selects one-shot smoke mode; everything else is ignored.
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("default").bench_function(id, f);
        self
    }
}

/// Declares a group-runner function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Declares `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion { test_mode: true };
        let mut calls = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("iter", |b| b.iter(|| 1 + 1));
            group.bench_function("batched", |b| {
                b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::LargeInput)
            });
            group.finish();
        }
        calls += 1;
        assert_eq!(calls, 1);
    }
}
