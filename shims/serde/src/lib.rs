//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based zero-copy architecture, this shim uses a
//! concrete [`Value`] tree as the data model: `Serialize` renders a value
//! into a `Value`, `Deserialize` rebuilds it from one. Formats (here only
//! `serde_json`) convert between `Value` and text. The derive macros are
//! re-exported from `serde_derive` and generate code against this model.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serializable type maps to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / a missing optional.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order preserved).
    Object(Vec<(String, Value)>),
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// The value had the wrong variant for `expected`.
    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        DeError::custom(format!(
            "invalid type: expected {expected}, got {}",
            kind_name(got)
        ))
    }

    /// An enum tag did not name any known variant.
    pub fn unknown_variant(enum_name: &str, tag: &str) -> Self {
        DeError::custom(format!("unknown variant `{tag}` for enum {enum_name}"))
    }

    /// A required struct field was absent.
    pub fn missing_field(struct_name: &str, field: &str) -> Self {
        DeError::custom(format!("missing field `{field}` in {struct_name}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

fn kind_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::U64(_) | Value::I64(_) => "integer",
        Value::F64(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// Types renderable into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn deserialize(value: &Value) -> Result<Self, DeError>;
}

// ---- helpers used by derive-generated code ------------------------------

/// Extracts the field list of an object value (derive helper).
pub fn expect_object<'v>(value: &'v Value, what: &str) -> Result<&'v [(String, Value)], DeError> {
    match value {
        Value::Object(fields) => Ok(fields),
        other => Err(DeError::invalid_type(what, other)),
    }
}

/// Looks up a struct field by name (derive helper).
pub fn field<'v>(
    fields: &'v [(String, Value)],
    struct_name: &str,
    name: &str,
) -> Result<&'v Value, DeError> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::missing_field(struct_name, name))
}

// ---- primitive impls -----------------------------------------------------

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let n = match *value {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => return Err(DeError::invalid_type("unsigned integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }

        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let n = match *value {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError::custom(format!("integer {n} out of range")))?,
                    Value::F64(f) if f.fract() == 0.0 => f as i64,
                    ref other => return Err(DeError::invalid_type("integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            ref other => Err(DeError::invalid_type("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::invalid_type("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::invalid_type("single-char string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::invalid_type("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                const ARITY: usize = [$($idx),+].len();
                match value {
                    Value::Array(items) if items.len() == ARITY => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(DeError::invalid_type("tuple array", other)),
                }
            }
        }
    )*};
}

serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-5i64).serialize()).unwrap(), -5);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
        let pair = ("x".to_string(), 2.5f64);
        let back: (String, f64) = Deserialize::deserialize(&pair.serialize()).unwrap();
        assert_eq!(back, pair);
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u64::deserialize(&Value::Str("no".into())).is_err());
        assert!(bool::deserialize(&Value::U64(1)).is_err());
        assert!(<(u64, u64)>::deserialize(&Value::Array(vec![Value::U64(1)])).is_err());
    }
}
