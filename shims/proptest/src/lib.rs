//! Offline stand-in for the `proptest` crate.
//!
//! Keeps the strategy/`proptest!` surface this workspace uses but replaces
//! shrinking and persistence with plain deterministic random generation: each
//! test gets an RNG seeded from its name, so failures reproduce exactly on
//! re-run. `prop_assert!`-style macros return `TestCaseError` through the
//! hidden `Result` the `proptest!` macro wraps around each body.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration, error type and the deterministic RNG.

    /// Error signalling a failed property case; propagated with `?` or via
    /// the `prop_assert!` macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        reason: String,
    }

    impl TestCaseError {
        /// Fails the current case with `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError {
                reason: reason.into(),
            }
        }

        /// Alias of [`TestCaseError::fail`], matching proptest's `Reject`.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::fail(reason)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.reason)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Per-test configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic xoshiro256++ RNG used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// An RNG seeded deterministically from the test's name, so each
        /// property sees the same case sequence on every run.
        pub fn for_test(test_name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = hash;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// A uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform integer in `[0, span)`; rejection-sampled, no bias.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            let zone = u64::MAX - (u64::MAX - span + 1) % span;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % span;
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    ///
    /// Object-safe so strategies can be boxed for [`Union`] / `prop_oneof!`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type (`prop_oneof!` helper).
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }

    /// Strategy returning a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Weighted choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` pairs.
        ///
        /// # Panics
        /// Panics if `options` is empty or all weights are zero.
        pub fn new_weighted(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total: u64 = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total);
            for (weight, strategy) in &self.options {
                if pick < *weight as u64 {
                    return strategy.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weights changed during generation")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Bounds for a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Items intended for glob import in property tests.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fails the current property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
}

/// Weighted (or uniform) choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Declares property tests: each `fn` runs `config.cases` random cases with
/// its arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg_pat:pat in $arg_strategy:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case_index in 0..config.cases {
                    let ($($arg_pat,)+) = ($(
                        $crate::strategy::Strategy::generate(&($arg_strategy), &mut rng),
                    )+);
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!("property {} failed at case {}: {}", stringify!($name), case_index, err);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, f64)> {
        (0u64..100, 0.0f64..1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(x in 5usize..10, y in 0u32..=u32::MAX, (a, b) in pair()) {
            prop_assert!((5..10).contains(&x));
            let _ = y;
            prop_assert!(a < 100);
            prop_assert!((0.0..1.0).contains(&b));
        }

        #[test]
        fn vec_and_oneof_compose(
            v in prop::collection::vec(prop_oneof![3 => 0u64..5, 1 => 100u64..105], 1..20),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in v {
                prop_assert!(x < 5 || (100..105).contains(&x), "got {x}");
            }
        }

        #[test]
        fn map_and_just(s in Just(7u64), d in (0u64..3).prop_map(|n| n * 2)) {
            prop_assert_eq!(s, 7);
            prop_assert!(d % 2 == 0 && d <= 4);
            prop_assert_ne!(s, 8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[allow(unnameable_test_items)]
    fn question_mark_propagates() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(2))]
            #[test]
            fn inner(_x in 0u64..2) {
                Err::<(), _>(TestCaseError::fail("boom")).err();
            }
        }
        inner();
    }
}
