//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the API this workspace uses: [`Bytes`]
//! (cheap-clone immutable buffer with O(1) slicing), [`BytesMut`] (growable
//! builder that freezes into `Bytes`), and the [`Buf`]/[`BufMut`] codec
//! traits with little-endian accessors.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
///
/// Clones share the same backing allocation; [`Bytes::slice`] returns a view
/// into the same allocation without copying.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// A buffer borrowing nothing: the static slice is copied once into a
    /// shared allocation.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-slice sharing the same allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer for encoding; freeze it into a [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

/// Read access to a cursor over bytes, with little-endian decoding helpers.
///
/// # Panics
/// All accessors panic when fewer than the required bytes remain, matching
/// the upstream crate's contract.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Consumes `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.advance(len);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte sink, with little-endian encoders.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.put_slice(&vec![val; cnt]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_codecs() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(300);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_f64_le(2.5);
        b.put_slice(b"xy");
        let mut bytes = b.freeze();
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u16_le(), 300);
        assert_eq!(bytes.get_u32_le(), 70_000);
        assert_eq!(bytes.get_u64_le(), 1 << 40);
        assert_eq!(bytes.get_f64_le(), 2.5);
        assert_eq!(bytes.copy_to_bytes(2).as_ref(), b"xy");
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4][..]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn equality_and_indexing() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b[0], b'a');
        assert_eq!(b, Bytes::from(vec![b'a', b'b', b'c']));
        assert!(Bytes::new().is_empty());
    }
}
