//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides [`Normal`] sampled via the Box–Muller transform (stateless, so
//! each `sample` call draws two uniforms and uses one — simpler than the
//! ziggurat and plenty for workload generation).

#![forbid(unsafe_code)]

pub use rand::distributions::Distribution;
use rand::RngCore;

/// Error returned when constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or non-finite.
    BadVariance,
    /// The mean was non-finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; fails on negative or non-finite
    /// standard deviation or non-finite mean.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution's standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller: two uniforms in (0, 1] -> one standard normal.
        let u1 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u1 = (1.0 - u1).max(f64::MIN_POSITIVE); // avoid ln(0)
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
        assert!(Normal::new(3.0, 0.5).is_ok());
    }

    #[test]
    fn sample_moments_match() {
        let dist = Normal::new(10.0, 2.0).expect("valid params");
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }
}
