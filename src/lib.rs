//! # asb — Adaptable Spatial Buffer
//!
//! A production-quality Rust reproduction of
//! **Thomas Brinkhoff, "A Robust and Self-Tuning Page-Replacement Strategy
//! for Spatial Database Systems", EDBT 2002** (LNCS 2287, pp. 533–552).
//!
//! This umbrella crate re-exports the public API of the workspace:
//!
//! * [`geom`] — 2D geometry (points, MBRs, spatial page criteria, curves),
//! * [`storage`] — fixed-size pages and a simulated disk with I/O statistics,
//! * [`buffer`] — the paper's contribution: a buffer manager with pluggable
//!   page-replacement policies (LRU, FIFO, LRU-T, LRU-P, LRU-K, the five
//!   spatial criteria A/EA/M/EM/EO, the static SLRU combination, and the
//!   self-tuning **adaptable spatial buffer (ASB)**),
//! * [`rtree`] — a disk-based R\*-tree (insert with forced reinsertion,
//!   delete, point/window/nearest-neighbour queries, STR bulk loading,
//!   spatial join) running on top of the buffer,
//! * [`quadtree`] — a disk-based bucket MX-CIF quadtree and
//! * [`zbtree`] — a B⁺-tree over z-order values: the paper's two other
//!   examples of pages with spatial entries, for cross-SAM experiments,
//! * [`workload`] — synthetic datasets and the paper's five query-set
//!   families,
//! * [`exp`] — the experiment harness that regenerates every data figure of
//!   the paper's evaluation,
//! * [`serve`] — a batched multi-session serving front end with a
//!   deterministic latency-percentile harness (`BENCH_serve.json`).
//!
//! # Quickstart
//!
//! ```
//! use asb::buffer::{BufferManager, PolicyKind};
//! use asb::rtree::RTree;
//! use asb::storage::DiskManager;
//! use asb::workload::{Dataset, DatasetKind, QuerySetSpec, Scale};
//!
//! // 1. Generate a small clustered dataset and bulk-load an R*-tree.
//! let dataset = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 42);
//! let disk = DiskManager::new();
//! let mut tree = RTree::bulk_load(disk, dataset.items()).unwrap();
//!
//! // 2. Wrap the tree's page store in an adaptable spatial buffer.
//! let buffer_pages = tree.page_count() / 20; // a 5% buffer
//! tree.set_buffer(BufferManager::with_policy(
//!     PolicyKind::Asb,
//!     buffer_pages.max(8),
//! ));
//!
//! // 3. Run a window-query workload through the buffer.
//! let queries = QuerySetSpec::uniform_windows(33).generate(&dataset, 200, 7);
//! let mut results = 0usize;
//! for q in &queries {
//!     results += tree.execute(q).unwrap().len();
//! }
//!
//! let stats = tree.buffer_stats().unwrap();
//! assert!(stats.logical_reads > 0);
//! assert!(stats.hits + stats.misses == stats.logical_reads);
//! println!("answers: {results}, hit ratio: {:.1}%", stats.hit_ratio() * 100.0);
//! ```

#![forbid(unsafe_code)]

pub use asb_core as buffer;
pub use asb_exp as exp;
pub use asb_geom as geom;
pub use asb_quadtree as quadtree;
pub use asb_rtree as rtree;
pub use asb_serve as serve;
pub use asb_storage as storage;
pub use asb_workload as workload;
pub use asb_zbtree as zbtree;
