//! Deterministic-schedule model checking for the sharded buffer pool.
//!
//! Each test wraps a small 2–3-thread scenario in [`schedule::explore`],
//! which reruns it under many seed-derived thread schedules and checks an
//! invariant in every one. Two build modes:
//!
//! * `RUSTFLAGS="--cfg asb_schedule" cargo test --test interleave` — the
//!   `asb_core::sync` facade compiles to the cooperative scheduler, every
//!   lock acquisition becomes a scheduling point, and each scenario is
//!   required to cover at least 1000 *distinct* fine-grained interleavings
//!   (`Report::controlled == true`).
//! * plain `cargo test --test interleave` — the facade compiles to real
//!   locks; the explorer still runs and still permutes threads at
//!   spawn/join boundaries, but asserts only the invariants, not coverage.
//!
//! Either way the exploration is a pure function of the seed: the same seed
//! replays the same schedules in the same order (`Report::digest`), so a
//! failure printed by CI is reproducible locally, and the failing pick
//! sequence is written to `target/schedule-artifacts/`.

use asb::buffer::{BufferManager, Flusher, FlusherConfig, PolicyKind, ShardedBuffer, SharedBuffer};
use asb::geom::SpatialStats;
use asb::serve::{BreakerConfig, BreakerState, CircuitBreaker};
use asb::storage::{
    AccessContext, ConcurrentPageStore, DiskManager, FaultConfig, FaultyStore, IoStats, Page,
    PageId, PageMeta, PageStore, QueryId, Result, SharedWal, StorageError, Wal, WalConfig,
    WalRecord,
};
use bytes::Bytes;
use schedule::sync as ssync;
use schedule::{explore, thread, ExploreConfig, Report};
use std::collections::HashMap;

fn meta() -> PageMeta {
    PageMeta::data(SpatialStats::EMPTY)
}

fn page(id: PageId, tag: u8) -> Page {
    Page::new(id, meta(), Bytes::from(vec![tag])).unwrap()
}

fn disk_with_pages(n: usize) -> (DiskManager, Vec<PageId>) {
    let mut d = DiskManager::new();
    let ids = (0..n)
        .map(|i| d.allocate(meta(), Bytes::from(vec![i as u8])).unwrap())
        .collect();
    d.reset_stats();
    (d, ids)
}

/// Runs `scenario` under the exploration budget appropriate for the build
/// mode: a one-run probe decides whether the facade compiled to the
/// scheduler, then the real exploration either demands >= 1000 distinct
/// fine-grained schedules (controlled build) or settles for a short sweep
/// of whole-thread permutations (plain build, where sync points don't
/// yield and the schedule space is tiny).
fn explore_scenario<F>(name: &'static str, seed: u64, scenario: F) -> Report
where
    F: Fn() + Send + Sync + Clone + 'static,
{
    let probe = ExploreConfig {
        target_distinct: 1,
        max_schedules: 1,
        ..ExploreConfig::new(name, seed)
    };
    let controlled = explore(&probe, scenario.clone()).controlled;
    let cfg = if controlled {
        ExploreConfig::new(name, seed) // 1000 distinct schedules, 4000-run budget
    } else {
        ExploreConfig {
            target_distinct: 40,
            max_schedules: 48,
            ..ExploreConfig::new(name, seed)
        }
    };
    let report = explore(&cfg, scenario);
    if report.controlled {
        assert!(
            report.distinct_schedules >= 1000,
            "scenario {name}: only {} distinct schedules explored \
             (the scenario needs more scheduling points)",
            report.distinct_schedules
        );
    }
    // `explore` already panics on a cyclic union graph; assert here too so
    // the invariant is visible at the scenario level and survives refactors
    // of the explorer's internal check.
    assert!(
        report.lock_graph.cycle().is_none(),
        "scenario {name}: lock-acquisition union graph has a cycle: {:?}",
        report.lock_graph
    );
    report
}

// ---------------------------------------------------------------------------
// Scenario 1: statistics accounting across shards.
// ---------------------------------------------------------------------------

/// Two threads read overlapping page sets routed across both shards. In
/// every interleaving the per-shard counters must add up: no stat update
/// may be lost, and physical reads must equal misses exactly (capacity
/// covers all pages, so each page is fetched once by whichever thread
/// arrives first and hit by the other).
fn stats_scenario() {
    let (disk, ids) = disk_with_pages(8);
    let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 8, 2);

    let a = pool.clone();
    let ids_a = ids.clone();
    let ta = thread::spawn(move || {
        for (i, &id) in ids_a[..6].iter().enumerate() {
            a.fetch(id, AccessContext::query(QueryId::new(i as u64)))
                .unwrap();
        }
    });
    let b = pool.clone();
    let ids_b = ids.clone();
    let tb = thread::spawn(move || {
        for (i, &id) in ids_b[2..].iter().enumerate() {
            b.fetch(id, AccessContext::query(QueryId::new(100 + i as u64)))
                .unwrap();
        }
    });
    ta.join();
    tb.join();

    let stats = pool.stats();
    assert_eq!(stats.logical_reads, 12, "a read was lost");
    assert_eq!(
        stats.hits + stats.misses,
        stats.logical_reads,
        "hit/miss accounting diverged from logical reads"
    );
    // Two threads can miss on the same page concurrently; the single-flight
    // scheduler then serves both misses with one physical read.
    assert!(
        pool.io_stats().reads <= stats.misses,
        "physical reads ({}) must never exceed misses ({})",
        pool.io_stats().reads,
        stats.misses
    );
    assert!(pool.resident() <= pool.capacity());
    assert_eq!(pool.live_guards(), 0, "every guard must have been dropped");
}

#[test]
fn concurrent_reads_never_lose_stat_updates() {
    explore_scenario("stats-not-lost", 0x5747_5f4c_4f53_5431, stats_scenario);
}

// ---------------------------------------------------------------------------
// Scenario 2: guard pin balance.
// ---------------------------------------------------------------------------

/// Three threads repeatedly fetch and drop a read guard on the same frame.
/// While any thread's guard is live, direct store access must be refused
/// with a typed error, and after all threads finish the live-guard count
/// must be exactly zero — proven by direct access succeeding again.
fn guard_balance_scenario() {
    let mut disk = DiskManager::new();
    let id = disk
        .allocate(meta(), Bytes::from_static(b"pinned"))
        .unwrap();
    let shared = SharedBuffer::new(disk, BufferManager::with_policy(PolicyKind::Lru, 4));
    drop(shared.fetch(id, AccessContext::default()).unwrap()); // make the frame resident

    let handles: Vec<_> = (0..3)
        .map(|_| {
            let s = shared.clone();
            thread::spawn(move || {
                for _ in 0..4 {
                    let guard = s.fetch(id, AccessContext::default()).unwrap();
                    assert_eq!(guard.payload.as_ref(), b"pinned");
                    // This thread's own guard is live, so the count the
                    // gate reports can never be below one.
                    let err = s.with_parts(|_, _| ()).unwrap_err();
                    assert!(
                        matches!(err, StorageError::GuardsOutstanding(n) if n >= 1),
                        "direct store access must be refused while guards live: {err:?}"
                    );
                    drop(guard);
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }

    assert_eq!(
        shared.live_guards(),
        0,
        "guard count must return to exactly zero after balanced use"
    );
    shared.with_parts(|_, _| ()).unwrap();
}

#[test]
fn balanced_guard_use_never_leaks_pins() {
    explore_scenario(
        "guard-balance",
        0x5049_4e5f_424c_414e,
        guard_balance_scenario,
    );
}

/// One thread holds a read guard on a frame while another churns enough
/// pages through a one-shard, two-frame pool that every admission needs a
/// victim. The pinned frame must never be evicted out from under the
/// guard: its payload stays intact in every interleaving.
fn guard_eviction_scenario() {
    let (disk, ids) = disk_with_pages(8);
    // One shard, two frames: the churn constantly needs a victim and the
    // only other frame is pinned.
    let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 2, 1);
    let pinned = ids[0];

    let holder = pool.clone();
    let th = thread::spawn(move || {
        let guard = holder.fetch(pinned, AccessContext::default()).unwrap();
        assert_eq!(guard.payload.as_ref(), &[0u8]);
        guard
    });
    let churn = pool.clone();
    let cids = ids.clone();
    let tc = thread::spawn(move || {
        for (i, &id) in cids[1..].iter().enumerate() {
            churn
                .fetch(id, AccessContext::query(QueryId::new(i as u64)))
                .unwrap();
        }
    });
    let guard = th.join();
    tc.join();

    assert_eq!(
        guard.payload.as_ref(),
        &[0u8],
        "the pinned frame must survive eviction churn"
    );
    drop(guard);
    assert_eq!(pool.live_guards(), 0);
    assert!(pool.resident() <= pool.capacity());
}

#[test]
fn read_guards_pin_frames_against_concurrent_eviction() {
    explore_scenario(
        "guard-eviction",
        0x4755_5244_5f45_5649,
        guard_eviction_scenario,
    );
}

// ---------------------------------------------------------------------------
// Scenario 3: single-flight deduplication.
// ---------------------------------------------------------------------------

/// Three threads miss on the same non-resident page at once. Whatever the
/// interleaving, the I/O scheduler must collapse the concurrent misses
/// into exactly one store read: either the flights overlap and the
/// followers adopt the leader's page, or a later thread finds the page
/// resident and hits. The page is never evicted (capacity covers the
/// working set), so the count is exact, not a bound.
fn single_flight_scenario() {
    let (disk, ids) = disk_with_pages(4);
    let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 4, 2);
    let hot = ids[0];

    let handles: Vec<_> = (0..3u64)
        .map(|t| {
            let p = pool.clone();
            thread::spawn(move || {
                let guard = p.fetch(hot, AccessContext::query(QueryId::new(t))).unwrap();
                assert_eq!(guard.payload.as_ref(), &[0u8]);
            })
        })
        .collect();
    for h in handles {
        h.join();
    }

    let stats = pool.stats();
    assert_eq!(stats.logical_reads, 3);
    assert_eq!(
        pool.io_stats().reads,
        1,
        "concurrent misses on one page must cost exactly one store read"
    );
    assert_eq!(pool.live_guards(), 0);
}

#[test]
fn concurrent_misses_are_deduplicated_to_one_store_read() {
    explore_scenario(
        "single-flight",
        0x534e_474c_5f46_4c54,
        single_flight_scenario,
    );
}

// ---------------------------------------------------------------------------
// Scenarios 4–7: write-ahead ordering, observed from inside the store.
// ---------------------------------------------------------------------------

/// A [`DiskManager`] wrapper that asserts, on *every* store write, that the
/// shared WAL already holds an image of the exact page content being
/// written. Placed under a pool, it turns the "log before write-back"
/// protocol into a checkable invariant at the only place it can be
/// violated: the moment data hits the store.
struct WalOrderProbe {
    disk: DiskManager,
    wal: SharedWal,
}

impl WalOrderProbe {
    fn assert_logged(&self, page: &Page) {
        let (records, _) = self.wal.lock().scan();
        let logged = records.iter().any(|rec| {
            matches!(rec, WalRecord::Image { page: img, .. }
                if img.id == page.id && img.payload == page.payload)
        });
        assert!(
            logged,
            "WAL image must precede store write for {:?}",
            page.id
        );
    }
}

impl PageStore for WalOrderProbe {
    fn read(&mut self, id: PageId, ctx: AccessContext) -> Result<Page> {
        self.disk.read(id, ctx)
    }

    fn write(&mut self, pg: Page) -> Result<()> {
        self.assert_logged(&pg);
        self.disk.write(pg)
    }

    fn allocate(&mut self, m: PageMeta, payload: Bytes) -> Result<PageId> {
        self.disk.allocate(m, payload)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.disk.free(id)
    }

    fn page_count(&self) -> usize {
        self.disk.page_count()
    }
}

impl ConcurrentPageStore for WalOrderProbe {
    fn read_shared(&self, id: PageId, ctx: AccessContext) -> Result<Page> {
        self.disk.read_shared(id, ctx)
    }

    fn io_stats(&self) -> IoStats {
        self.disk.io_stats()
    }

    fn reset_io_stats(&self) {
        self.disk.reset_io_stats()
    }
}

/// Two threads issue buffered writes into a pool whose shards hold a single
/// frame each, so nearly every write evicts a dirty predecessor and
/// write-back races with logging. The probe asserts WAL-before-store on
/// each of those write-backs, plus the explicit flushes.
fn wal_order_scenario() {
    let (disk, ids) = disk_with_pages(8);
    let wal = Wal::shared(WalConfig::default());
    let probe = WalOrderProbe {
        disk,
        wal: wal.clone(),
    };
    // capacity == shards: one frame per shard, maximal dirty-eviction churn.
    let pool = ShardedBuffer::new(probe, PolicyKind::Lru, 2, 2);
    pool.attach_wal(wal.clone());

    let wa = pool.clone();
    let ids_a = ids.clone();
    let ta = thread::spawn(move || {
        for (i, &id) in ids_a[..4].iter().enumerate() {
            wa.write_buffered(page(id, 10 + i as u8)).unwrap();
        }
    });
    let wb = pool.clone();
    let ids_b = ids.clone();
    let tb = thread::spawn(move || {
        for (i, &id) in ids_b[4..].iter().enumerate() {
            wb.write_buffered(page(id, 20 + i as u8)).unwrap();
        }
        wb.flush().unwrap();
    });
    ta.join();
    tb.join();

    pool.flush().unwrap();
    pool.with_store(|probe| {
        for (i, &id) in ids.iter().enumerate() {
            let tag = if i < 4 {
                10 + i as u8
            } else {
                20 + (i - 4) as u8
            };
            assert_eq!(
                probe.disk.peek(id).unwrap().payload.as_ref(),
                &[tag],
                "buffered write to {id:?} was lost"
            );
        }
    })
    .unwrap();
}

#[test]
fn dirty_evictions_always_log_before_store_write() {
    explore_scenario(
        "wal-before-store",
        0x5741_4c5f_4f52_4452,
        wal_order_scenario,
    );
}

/// The deliberately-broken mutation: the store write happens *before* the
/// WAL append (the protocol with its two halves swapped). The probe must
/// catch it under every schedule, and the failure must surface through
/// `explore` as a plain panic so `#[should_panic]` composes.
fn broken_write_scenario() {
    let mut disk = DiskManager::new();
    let id = disk.allocate(meta(), Bytes::from_static(b"v1")).unwrap();
    let wal = Wal::shared(WalConfig::default());
    let mut probe = WalOrderProbe {
        disk,
        wal: wal.clone(),
    };
    let broken = page(id, 0xBB);
    let t = thread::spawn(move || {
        // wal-order-ok: this is the mutation under test — write-back first,
        // log second — and the probe inside `write` must reject it.
        probe.write(broken.clone()).unwrap();
        wal.lock().append_image(&broken).unwrap();
    });
    t.join();
}

#[test]
#[should_panic(expected = "WAL image must precede store write")]
fn store_write_before_wal_append_is_caught() {
    let cfg = ExploreConfig {
        target_distinct: 8,
        max_schedules: 8,
        ..ExploreConfig::new("broken-wal-order", 0x4252_4f4b_454e_0001)
    };
    explore(&cfg, broken_write_scenario);
}

/// A checkpoint races with a concurrent flush and more buffered writes.
/// Afterwards the WAL is replayed onto a snapshot of the store taken
/// *as-is* (dirty frames unflushed — a simulated crash): every page must
/// come back at its last logged image. If any interleaving let the
/// checkpoint record a redo horizon above a still-dirty frame's first
/// image, recovery would skip that image and this check would see stale
/// data.
fn checkpoint_scenario() {
    let (disk, ids) = disk_with_pages(6);
    let wal = Wal::shared(WalConfig::default());
    let probe = WalOrderProbe {
        disk,
        wal: wal.clone(),
    };
    let pool = ShardedBuffer::new(probe, PolicyKind::Lru, 6, 2);
    pool.attach_wal(wal.clone());
    for (i, &id) in ids[..4].iter().enumerate() {
        pool.write_buffered(page(id, 10 + i as u8)).unwrap();
    }

    let writer = pool.clone();
    let wids = ids.clone();
    let ta = thread::spawn(move || {
        writer.write_buffered(page(wids[4], 50)).unwrap();
        writer.flush().unwrap();
        // This frame stays dirty past the end of the scenario: the last
        // checkpoint's horizon must still cover it.
        writer.write_buffered(page(wids[5], 60)).unwrap();
    });
    let ck = pool.clone();
    let tb = thread::spawn(move || {
        ck.checkpoint().unwrap();
        ck.checkpoint().unwrap();
    });
    // A reader keeps both shards busy while the flush and the checkpoints
    // race, widening the interleaving space without touching the invariant.
    let reader = pool.clone();
    let rids = ids.clone();
    let tc = thread::spawn(move || {
        for (i, &id) in rids[..4].iter().enumerate() {
            reader
                .fetch(id, AccessContext::query(QueryId::new(200 + i as u64)))
                .unwrap();
        }
    });
    ta.join();
    tb.join();
    tc.join();

    assert_recovery_matches_last_images(&pool, &wal, &ids);
}

#[test]
fn checkpoint_horizon_never_abandons_a_dirty_frame() {
    explore_scenario(
        "checkpoint-horizon",
        0x434b_5054_5f48_5a4e,
        checkpoint_scenario,
    );
}

/// Replays the WAL onto an as-is snapshot of the store (dirty frames
/// unflushed — a simulated crash) and checks that every logged page comes
/// back at its last logged image. Shared tail of the checkpoint and
/// flusher scenarios: both race write-back against the redo horizon.
fn assert_recovery_matches_last_images(
    pool: &ShardedBuffer<WalOrderProbe>,
    wal: &SharedWal,
    ids: &[PageId],
) {
    let (records, _) = wal.lock().scan();
    let mut last_image: HashMap<PageId, Page> = HashMap::new();
    for rec in &records {
        if let WalRecord::Image { page, .. } = rec {
            last_image.insert(page.id, page.clone());
        }
    }
    let mut snapshot = pool
        .with_store(|probe| MapStore::snapshot_of(&probe.disk, ids))
        .unwrap();
    wal.lock().recover_into(&mut snapshot).unwrap();
    for (id, img) in &last_image {
        assert_eq!(
            snapshot.get(*id).payload,
            img.payload,
            "recovery must restore {id:?} to its last logged image — \
             a checkpoint horizon abandoned a dirty frame"
        );
    }
}

/// The background flusher races a checkpoint and fresh buffered writes.
/// The flusher drains dirty frames through the same logged write-back path
/// as an explicit flush, so in every interleaving (a) the WAL-before-store
/// probe holds on each drained frame, and (b) a crash replay onto the
/// as-is store restores every page to its last logged image — the
/// checkpoint's redo horizon must never run ahead of frames the flusher
/// has not drained yet.
fn flusher_scenario() {
    let (disk, ids) = disk_with_pages(6);
    let wal = Wal::shared(WalConfig::default());
    let probe = WalOrderProbe {
        disk,
        wal: wal.clone(),
    };
    let pool = ShardedBuffer::new(probe, PolicyKind::Lru, 6, 2);
    pool.attach_wal(wal.clone());
    for (i, &id) in ids[..4].iter().enumerate() {
        pool.write_buffered(page(id, 10 + i as u8)).unwrap();
    }

    let mut flusher = Flusher::new(
        pool.clone(),
        FlusherConfig {
            high_watermark: 0.25,
            low_watermark: 0.0,
            max_batch: 2,
            checkpoint_after_drain: false,
        },
    );
    let tf = thread::spawn(move || {
        flusher.run_once().unwrap();
    });
    let ck = pool.clone();
    let tb = thread::spawn(move || {
        ck.checkpoint().unwrap();
    });
    let writer = pool.clone();
    let wids = ids.clone();
    let tw = thread::spawn(move || {
        writer.write_buffered(page(wids[4], 50)).unwrap();
        writer.write_buffered(page(wids[5], 60)).unwrap();
    });
    tf.join();
    tb.join();
    tw.join();

    assert_recovery_matches_last_images(&pool, &wal, &ids);
}

#[test]
fn background_flusher_respects_the_checkpoint_horizon() {
    explore_scenario("flusher-horizon", 0x464c_5553_485f_484e, flusher_scenario);
}

/// Minimal in-memory [`PageStore`] used as the crash-recovery target: it
/// starts as a verbatim snapshot of the disk (including unflushed staleness)
/// and receives the WAL replay.
struct MapStore {
    pages: HashMap<PageId, Page>,
    next_id: u64,
}

impl MapStore {
    fn snapshot_of(disk: &DiskManager, ids: &[PageId]) -> Self {
        let pages = ids
            .iter()
            .map(|&id| (id, disk.peek(id).unwrap().clone()))
            .collect();
        MapStore {
            pages,
            next_id: ids.iter().map(|id| id.raw()).max().unwrap_or(0) + 1,
        }
    }

    fn get(&self, id: PageId) -> &Page {
        self.pages.get(&id).unwrap()
    }
}

impl PageStore for MapStore {
    fn read(&mut self, id: PageId, _ctx: AccessContext) -> Result<Page> {
        self.pages
            .get(&id)
            .cloned()
            .ok_or(StorageError::PageNotFound(id))
    }

    fn write(&mut self, pg: Page) -> Result<()> {
        self.pages.insert(pg.id, pg);
        Ok(())
    }

    fn allocate(&mut self, m: PageMeta, payload: Bytes) -> Result<PageId> {
        let id = PageId::new(self.next_id);
        self.next_id += 1;
        self.pages.insert(id, Page::new(id, m, payload)?);
        Ok(id)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.pages
            .remove(&id)
            .map(|_| ())
            .ok_or(StorageError::PageNotFound(id))
    }

    fn page_count(&self) -> usize {
        self.pages.len()
    }
}

// ---------------------------------------------------------------------------
// Determinism of the explorer itself.
// ---------------------------------------------------------------------------

#[test]
fn same_seed_replays_the_same_schedules() {
    let cfg = ExploreConfig {
        target_distinct: 64,
        max_schedules: 128,
        artifact_dir: None,
        ..ExploreConfig::new("determinism", 0x5345_4544_0000_0001)
    };
    let a = explore(&cfg, stats_scenario);
    let b = explore(&cfg, stats_scenario);
    assert_eq!(
        a, b,
        "two explorations with the same seed must run identical schedules"
    );

    let other = explore(
        &ExploreConfig {
            seed: cfg.seed ^ 0xFFFF,
            ..cfg.clone()
        },
        stats_scenario,
    );
    assert_ne!(
        a.digest, other.digest,
        "a different seed should explore a different schedule sequence"
    );
}

#[test]
fn page_id_routing_matches_between_runs() {
    // The schedule explorer relies on scenarios being pure functions of
    // their inputs; shard routing is the one hash involved, so pin down
    // that it is deterministic (no RandomState sneaking in).
    let (disk, ids) = disk_with_pages(16);
    let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 16, 2);
    for &id in &ids {
        pool.fetch(id, AccessContext::default()).unwrap();
    }
    let first = pool.shard_stats();
    let (disk, _) = disk_with_pages(16);
    let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 16, 2);
    for &id in &ids {
        pool.fetch(id, AccessContext::default()).unwrap();
    }
    assert_eq!(first, pool.shard_stats());
}

// ---------------------------------------------------------------------------
// Scenario 9: expert-arena mixer under 2-shard concurrency.
// ---------------------------------------------------------------------------

/// Two threads hammer overlapping page sets through a 2-shard Arena pool
/// with eviction pressure (12 pages, 8-frame pool → 4 frames per shard).
/// Whatever the interleaving, each shard's mixer must end in a lawful
/// state: weights strictly positive and summing to one, the leader the
/// argmax weight, every expert's ghost cache bounded by the shard
/// capacity, and the pool-wide retained history within the documented
/// `3 × roster × capacity` bound. The usual pool invariants (no lost
/// reads, no leaked guards) must hold too.
fn arena_scenario() {
    let (disk, ids) = disk_with_pages(12);
    let pool = ShardedBuffer::new(disk, PolicyKind::Arena, 8, 2);

    let a = pool.clone();
    let ids_a = ids.clone();
    let ta = thread::spawn(move || {
        for (i, &id) in ids_a[..9].iter().enumerate() {
            a.fetch(id, AccessContext::query(QueryId::new(i as u64)))
                .unwrap();
        }
    });
    let b = pool.clone();
    let ids_b = ids.clone();
    let tb = thread::spawn(move || {
        for (i, &id) in ids_b[3..].iter().enumerate() {
            b.fetch(id, AccessContext::query(QueryId::new(100 + i as u64)))
                .unwrap();
        }
    });
    ta.join();
    tb.join();

    let stats = pool.stats();
    assert_eq!(stats.logical_reads, 18, "a read was lost");
    assert_eq!(stats.hits + stats.misses, stats.logical_reads);
    assert!(pool.resident() <= pool.capacity());
    assert_eq!(pool.live_guards(), 0, "every guard must have been dropped");

    let shard_caps: Vec<usize> = vec![4, 4]; // 8 frames split over 2 shards
    let states = pool.shard_arena_states();
    assert_eq!(states.len(), 2);
    let mut roster_len = 0;
    for (shard, (state, cap)) in states.iter().zip(&shard_caps).enumerate() {
        let state = state
            .as_ref()
            .unwrap_or_else(|| panic!("shard {shard}: Arena pool must expose a mixer state"));
        roster_len = state.experts.len();
        let sum: f64 = state.weights().iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "shard {shard}: weights sum to {sum}, not 1"
        );
        assert!(
            state.weights().iter().all(|&w| w > 0.0),
            "shard {shard}: fixed-share must keep every weight positive"
        );
        let argmax = state
            .weights()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(
            state.leader, argmax,
            "shard {shard}: leader must be the argmax weight"
        );
        for e in &state.experts {
            assert!(
                e.ghost_len <= *cap,
                "shard {shard}: expert {} ghost cache {} exceeds shard capacity {cap}",
                e.label,
                e.ghost_len
            );
        }
    }
    assert!(
        pool.retained_history() <= 3 * roster_len * pool.capacity(),
        "retained history {} exceeds the documented 3*roster*capacity bound",
        pool.retained_history()
    );
}

#[test]
fn arena_mixer_state_is_lawful_under_concurrency() {
    explore_scenario("arena-mixer", 0x4152_454e_415f_4d58, arena_scenario);
}

// ---------------------------------------------------------------------------
// Scenario 10: batched fetches (the serving front end's access pattern).
// ---------------------------------------------------------------------------

/// Two threads issue overlapping `fetch_batch` calls — with duplicate ids
/// inside one batch — against a 2-shard pool under eviction pressure (10
/// pages, 6 frames). The batched path must behave exactly like the
/// sequential one in every interleaving: every id gets its response (one
/// outcome per id, in input order), every guard is returned and dropped
/// (pin balance restored), and no accounting is lost (hits + misses equals
/// logical reads; physical reads never exceed misses thanks to
/// single-flight miss coalescing).
fn batch_scenario() {
    let (disk, ids) = disk_with_pages(10);
    let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 6, 2);

    let a = pool.clone();
    let ids_a = ids.clone();
    let ta = thread::spawn(move || {
        // Two batches; the second repeats an id within the batch.
        for (q, slots) in [vec![0, 1, 2, 3, 4], vec![2, 7, 2, 8]]
            .into_iter()
            .enumerate()
        {
            let batch: Vec<PageId> = slots.iter().map(|&s| ids_a[s]).collect();
            let outcomes = a.fetch_batch(&batch, AccessContext::query(QueryId::new(q as u64)));
            assert_eq!(outcomes.len(), batch.len(), "a response was lost");
            for (slot_result, &slot) in outcomes.iter().zip(&slots) {
                let (guard, _hit) = slot_result
                    .as_ref()
                    .expect("healthy store: no slot may fail");
                assert_eq!(guard.id, ids_a[slot], "responses must stay in input order");
                assert_eq!(guard.payload.as_ref(), &[slot as u8]);
            }
        }
    });
    let b = pool.clone();
    let ids_b = ids.clone();
    let tb = thread::spawn(move || {
        let first: Vec<PageId> = ids_b[3..9].to_vec();
        let second = vec![ids_b[9], ids_b[0], ids_b[9]];
        for (q, batch) in [first, second].into_iter().enumerate() {
            let outcomes =
                b.fetch_batch(&batch, AccessContext::query(QueryId::new(100 + q as u64)));
            assert_eq!(outcomes.len(), batch.len(), "a response was lost");
            for (slot_result, &id) in outcomes.iter().zip(&batch) {
                let (guard, _hit) = slot_result
                    .as_ref()
                    .expect("healthy store: no slot may fail");
                assert_eq!(guard.id, id, "responses must stay in input order");
            }
        }
    });
    ta.join();
    tb.join();

    let stats = pool.stats();
    assert_eq!(stats.logical_reads, 18, "a batched read was lost");
    assert_eq!(
        stats.hits + stats.misses,
        stats.logical_reads,
        "hit/miss accounting diverged from logical reads"
    );
    assert!(
        pool.io_stats().reads <= stats.misses,
        "physical reads ({}) must never exceed misses ({})",
        pool.io_stats().reads,
        stats.misses
    );
    assert!(pool.resident() <= pool.capacity());
    assert_eq!(
        pool.live_guards(),
        0,
        "every batch guard must have been dropped — pin balance restored"
    );
}

#[test]
fn batched_fetches_preserve_pool_invariants_under_concurrency() {
    explore_scenario("batch-serve", 0x4241_5443_485f_5356, batch_scenario);
}

// ---------------------------------------------------------------------------
// Scenario 10: circuit-breaker state machine under concurrent feeding.
// ---------------------------------------------------------------------------

/// Is `before --event--> after` a lawful breaker transition? Events are
/// `'s'` (success) and `'f'` (failure); cooldown expiry (`Open -> HalfOpen`)
/// is applied inside `state(now)` and therefore surfaces as
/// `before == HalfOpen` on the next record, never as its own event. A
/// breaker is only fed after `allows` returned true, so `before` is never
/// `Open`.
fn legal_breaker_transition(before: BreakerState, event: char, after: BreakerState) -> bool {
    use BreakerState::*;
    matches!(
        (before, event, after),
        (Closed, 's', Closed)
            | (HalfOpen, 's', Closed)
            | (Closed, 'f', Closed)
            | (Closed, 'f', Open)
            | (HalfOpen, 'f', Open)
    )
}

/// Two threads drive the serving loop's degradation protocol against one
/// pool: per-partition [`CircuitBreaker`]s behind the sync facade's mutex
/// (consult + batched fetch + feed as one atomic section, so the
/// concatenated log is the breaker's linearized history), a shared
/// simulated clock, one permanently dead page in partition 0. In every
/// interleaving: every logged transition is lawful, the healthy
/// partition's breaker never opens, the dead partition's breaker does,
/// failed slots are typed per page, and pool give-up accounting matches
/// the failures callers observed.
fn breaker_scenario() {
    let (disk, ids) = disk_with_pages(8);
    let store = FaultyStore::new(disk, FaultConfig::reliable());
    store.mark_permanent(ids[1]);
    let pool = ShardedBuffer::new(store, PolicyKind::Lru, 8, 2);
    let cfg = BreakerConfig {
        failure_threshold: 2,
        cooldown_ticks: 25,
    };
    type BreakerLog = Vec<(BreakerState, char, BreakerState)>;
    let breakers: std::sync::Arc<Vec<ssync::Mutex<(CircuitBreaker, BreakerLog)>>> =
        std::sync::Arc::new(
            (0..2)
                .map(|_| ssync::Mutex::new((CircuitBreaker::new(cfg), Vec::new())))
                .collect(),
        );
    let clock = std::sync::Arc::new(ssync::AtomicU64::new(0));
    let err_slots = std::sync::Arc::new(ssync::AtomicU64::new(0));

    let worker = |t: u64| {
        let pool = pool.clone();
        let ids = ids.clone();
        let breakers = breakers.clone();
        let clock = clock.clone();
        let err_slots = err_slots.clone();
        move || {
            for round in 0..5u64 {
                // relaxed-ok: lone simulated-clock counter, no other memory depends on it
                let now = clock.fetch_add(7, ssync::Ordering::Relaxed);
                for part in 0..2usize {
                    let pages: Vec<PageId> = ids[part * 4..part * 4 + 4].to_vec();
                    let ctx = AccessContext::query(QueryId::new(t * 100 + round));
                    let mut cell = breakers[part].lock();
                    let (breaker, log) = &mut *cell;
                    let before = breaker.state(now);
                    if breaker.allows(now) {
                        let outcomes = pool.fetch_batch(&pages, ctx);
                        assert_eq!(outcomes.len(), pages.len(), "a slot was lost");
                        let mut failed = false;
                        for (slot, &id) in outcomes.iter().zip(&pages) {
                            match slot {
                                Ok((guard, _hit)) => assert_eq!(guard.id, id),
                                Err(e) => {
                                    assert_eq!(e.id, id, "failure typed to the wrong page");
                                    assert!(e.is_give_up(), "dead page must be a give-up");
                                    // relaxed-ok: lone failure tally read after join
                                    err_slots.fetch_add(1, ssync::Ordering::Relaxed);
                                    failed = true;
                                }
                            }
                        }
                        let event = if failed {
                            breaker.on_failure(now);
                            'f'
                        } else {
                            breaker.on_success();
                            's'
                        };
                        log.push((before, event, breaker.state(now)));
                    } else {
                        // Open: buffer-resident state only — the store is
                        // never consulted, so the dead page yields `None`,
                        // not an error.
                        for &id in &pages {
                            if let Some(guard) = pool.fetch_resident(id, ctx) {
                                assert_eq!(guard.id, id);
                            }
                        }
                    }
                }
            }
        }
    };
    let ta = thread::spawn(worker(0));
    let tb = thread::spawn(worker(1));
    ta.join();
    tb.join();

    for (part, cell) in breakers.iter().enumerate() {
        let (breaker, log) = &mut *cell.lock();
        for &(before, event, after) in log.iter() {
            assert!(
                legal_breaker_transition(before, event, after),
                "partition {part}: illegal transition {before:?} --{event}--> {after:?}"
            );
        }
        if part == 0 {
            assert!(log.iter().all(|&(_, e, _)| e == 'f'));
            assert!(breaker.opens() >= 1, "a permanently dead page must trip");
        } else {
            assert!(log.iter().all(|&(_, e, _)| e == 's'));
            assert_eq!(breaker.opens(), 0, "healthy partition must stay closed");
        }
    }
    let stats = pool.stats();
    assert_eq!(
        stats.hits + stats.misses,
        stats.logical_reads,
        "hit/miss accounting diverged from logical reads"
    );
    assert_eq!(
        stats.give_ups,
        // relaxed-ok: lone failure tally read after join
        err_slots.load(ssync::Ordering::Relaxed),
        "give-up accounting must match the failures callers observed"
    );
    assert!(pool.io_stats().reads <= stats.misses);
    assert_eq!(pool.live_guards(), 0, "pin balance restored");
}

#[test]
fn breaker_state_machine_is_lawful_under_concurrency() {
    explore_scenario("breaker-serve", 0x4252_4541_4b45_525f, breaker_scenario);
}

// ---------------------------------------------------------------------------
// Scenario 8: the union lock graph catches inversions no schedule can
// deadlock on.
// ---------------------------------------------------------------------------

/// Two workers take a shard-stand-in mutex and a store-stand-in rwlock in
/// opposite orders — but strictly one after the other (joined in between),
/// so no single schedule can ever deadlock. Only the union of the
/// lock-acquisition graphs across schedules exposes the inversion; the
/// explorer must panic with a lock-order cycle and write a seed-bearing
/// artifact.
fn sequential_inversion_scenario() {
    let shard = std::sync::Arc::new(ssync::Mutex::new(0u32));
    let store = std::sync::Arc::new(ssync::RwLock::new(0u32));

    let (s1, t1) = (std::sync::Arc::clone(&shard), std::sync::Arc::clone(&store));
    thread::spawn(move || {
        let _shard = s1.lock();
        let _store = t1.write();
    })
    .join();

    let (s2, t2) = (std::sync::Arc::clone(&shard), std::sync::Arc::clone(&store));
    thread::spawn(move || {
        let _store = t2.write();
        let _shard = s2.lock();
    })
    .join();
}

#[test]
#[should_panic(expected = "lock-order cycle")]
fn union_lock_graph_flags_sequential_inversion() {
    // Not `explore_scenario`: the explorer panics before returning a
    // report, and the plain-build sweep budget is all this fixture needs.
    explore(
        &ExploreConfig {
            target_distinct: 40,
            max_schedules: 48,
            artifact_dir: Some(std::path::PathBuf::from(
                "target/schedule-artifacts/interleave-fixture",
            )),
            ..ExploreConfig::new("sequential-inversion", 0x1217)
        },
        sequential_inversion_scenario,
    );
}
