//! Deterministic-schedule model checking for the sharded buffer pool.
//!
//! Each test wraps a small 2–3-thread scenario in [`schedule::explore`],
//! which reruns it under many seed-derived thread schedules and checks an
//! invariant in every one. Two build modes:
//!
//! * `RUSTFLAGS="--cfg asb_schedule" cargo test --test interleave` — the
//!   `asb_core::sync` facade compiles to the cooperative scheduler, every
//!   lock acquisition becomes a scheduling point, and each scenario is
//!   required to cover at least 1000 *distinct* fine-grained interleavings
//!   (`Report::controlled == true`).
//! * plain `cargo test --test interleave` — the facade compiles to real
//!   locks; the explorer still runs and still permutes threads at
//!   spawn/join boundaries, but asserts only the invariants, not coverage.
//!
//! Either way the exploration is a pure function of the seed: the same seed
//! replays the same schedules in the same order (`Report::digest`), so a
//! failure printed by CI is reproducible locally, and the failing pick
//! sequence is written to `target/schedule-artifacts/`.

use asb::buffer::{BufferManager, PolicyKind, ShardedBuffer, SharedBuffer};
use asb::geom::SpatialStats;
use asb::storage::{
    AccessContext, ConcurrentPageStore, DiskManager, IoStats, Page, PageId, PageMeta, PageStore,
    QueryId, Result, SharedWal, StorageError, Wal, WalConfig, WalRecord,
};
use bytes::Bytes;
use schedule::{explore, thread, ExploreConfig, Report};
use std::collections::HashMap;

fn meta() -> PageMeta {
    PageMeta::data(SpatialStats::EMPTY)
}

fn page(id: PageId, tag: u8) -> Page {
    Page::new(id, meta(), Bytes::from(vec![tag])).unwrap()
}

fn disk_with_pages(n: usize) -> (DiskManager, Vec<PageId>) {
    let mut d = DiskManager::new();
    let ids = (0..n)
        .map(|i| d.allocate(meta(), Bytes::from(vec![i as u8])).unwrap())
        .collect();
    d.reset_stats();
    (d, ids)
}

/// Runs `scenario` under the exploration budget appropriate for the build
/// mode: a one-run probe decides whether the facade compiled to the
/// scheduler, then the real exploration either demands >= 1000 distinct
/// fine-grained schedules (controlled build) or settles for a short sweep
/// of whole-thread permutations (plain build, where sync points don't
/// yield and the schedule space is tiny).
fn explore_scenario<F>(name: &'static str, seed: u64, scenario: F) -> Report
where
    F: Fn() + Send + Sync + Clone + 'static,
{
    let probe = ExploreConfig {
        target_distinct: 1,
        max_schedules: 1,
        ..ExploreConfig::new(name, seed)
    };
    let controlled = explore(&probe, scenario.clone()).controlled;
    let cfg = if controlled {
        ExploreConfig::new(name, seed) // 1000 distinct schedules, 4000-run budget
    } else {
        ExploreConfig {
            target_distinct: 40,
            max_schedules: 48,
            ..ExploreConfig::new(name, seed)
        }
    };
    let report = explore(&cfg, scenario);
    if report.controlled {
        assert!(
            report.distinct_schedules >= 1000,
            "scenario {name}: only {} distinct schedules explored \
             (the scenario needs more scheduling points)",
            report.distinct_schedules
        );
    }
    report
}

// ---------------------------------------------------------------------------
// Scenario 1: statistics accounting across shards.
// ---------------------------------------------------------------------------

/// Two threads read overlapping page sets routed across both shards. In
/// every interleaving the per-shard counters must add up: no stat update
/// may be lost, and physical reads must equal misses exactly (capacity
/// covers all pages, so each page is fetched once by whichever thread
/// arrives first and hit by the other).
fn stats_scenario() {
    let (disk, ids) = disk_with_pages(8);
    let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 8, 2);

    let a = pool.clone();
    let ids_a = ids.clone();
    let ta = thread::spawn(move || {
        for (i, &id) in ids_a[..6].iter().enumerate() {
            a.read(id, AccessContext::query(QueryId::new(i as u64)))
                .unwrap();
        }
    });
    let b = pool.clone();
    let ids_b = ids.clone();
    let tb = thread::spawn(move || {
        for (i, &id) in ids_b[2..].iter().enumerate() {
            b.read(id, AccessContext::query(QueryId::new(100 + i as u64)))
                .unwrap();
        }
    });
    ta.join();
    tb.join();

    let stats = pool.stats();
    assert_eq!(stats.logical_reads, 12, "a read was lost");
    assert_eq!(
        stats.hits + stats.misses,
        stats.logical_reads,
        "hit/miss accounting diverged from logical reads"
    );
    assert_eq!(
        pool.io_stats().reads,
        stats.misses,
        "physical reads must match misses exactly"
    );
    assert!(pool.resident() <= pool.capacity());
}

#[test]
fn concurrent_reads_never_lose_stat_updates() {
    explore_scenario("stats-not-lost", 0x5747_5f4c_4f53_5431, stats_scenario);
}

// ---------------------------------------------------------------------------
// Scenario 2: pin-count balance.
// ---------------------------------------------------------------------------

/// Three threads repeatedly pin, use and unpin the same frame. Balanced use
/// must never observe `NotPinned` mid-run (the count can never dip below
/// the caller's own outstanding pins), and after all threads finish the
/// count must be exactly zero — proven by the *next* unpin being rejected.
fn pin_scenario() {
    let mut disk = DiskManager::new();
    let id = disk
        .allocate(meta(), Bytes::from_static(b"pinned"))
        .unwrap();
    let shared = SharedBuffer::new(disk, BufferManager::with_policy(PolicyKind::Lru, 4));
    shared.read(id, AccessContext::default()).unwrap(); // make the frame resident

    let handles: Vec<_> = (0..3)
        .map(|_| {
            let s = shared.clone();
            thread::spawn(move || {
                for _ in 0..4 {
                    s.with_parts(|_, buf| buf.pin(id)).unwrap();
                    s.read(id, AccessContext::default()).unwrap();
                    s.with_parts(|_, buf| buf.unpin(id)).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }

    let err = shared.with_parts(|_, buf| buf.unpin(id)).unwrap_err();
    assert_eq!(
        err,
        StorageError::NotPinned(id),
        "pin count must return to exactly zero after balanced use"
    );
}

#[test]
fn balanced_pin_unpin_never_underflows() {
    explore_scenario("pin-balance", 0x5049_4e5f_424c_414e, pin_scenario);
}

// ---------------------------------------------------------------------------
// Scenarios 3–5: write-ahead ordering, observed from inside the store.
// ---------------------------------------------------------------------------

/// A [`DiskManager`] wrapper that asserts, on *every* store write, that the
/// shared WAL already holds an image of the exact page content being
/// written. Placed under a pool, it turns the "log before write-back"
/// protocol into a checkable invariant at the only place it can be
/// violated: the moment data hits the store.
struct WalOrderProbe {
    disk: DiskManager,
    wal: SharedWal,
}

impl WalOrderProbe {
    fn assert_logged(&self, page: &Page) {
        let (records, _) = self.wal.lock().scan();
        let logged = records.iter().any(|rec| {
            matches!(rec, WalRecord::Image { page: img, .. }
                if img.id == page.id && img.payload == page.payload)
        });
        assert!(
            logged,
            "WAL image must precede store write for {:?}",
            page.id
        );
    }
}

impl PageStore for WalOrderProbe {
    fn read(&mut self, id: PageId, ctx: AccessContext) -> Result<Page> {
        self.disk.read(id, ctx)
    }

    fn write(&mut self, pg: Page) -> Result<()> {
        self.assert_logged(&pg);
        self.disk.write(pg)
    }

    fn allocate(&mut self, m: PageMeta, payload: Bytes) -> Result<PageId> {
        self.disk.allocate(m, payload)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.disk.free(id)
    }

    fn page_count(&self) -> usize {
        self.disk.page_count()
    }
}

impl ConcurrentPageStore for WalOrderProbe {
    fn read_shared(&self, id: PageId, ctx: AccessContext) -> Result<Page> {
        self.disk.read_shared(id, ctx)
    }

    fn io_stats(&self) -> IoStats {
        self.disk.io_stats()
    }

    fn reset_io_stats(&self) {
        self.disk.reset_io_stats()
    }
}

/// Two threads issue buffered writes into a pool whose shards hold a single
/// frame each, so nearly every write evicts a dirty predecessor and
/// write-back races with logging. The probe asserts WAL-before-store on
/// each of those write-backs, plus the explicit flushes.
fn wal_order_scenario() {
    let (disk, ids) = disk_with_pages(8);
    let wal = Wal::shared(WalConfig::default());
    let probe = WalOrderProbe {
        disk,
        wal: wal.clone(),
    };
    // capacity == shards: one frame per shard, maximal dirty-eviction churn.
    let pool = ShardedBuffer::new(probe, PolicyKind::Lru, 2, 2);
    pool.attach_wal(wal.clone());

    let wa = pool.clone();
    let ids_a = ids.clone();
    let ta = thread::spawn(move || {
        for (i, &id) in ids_a[..4].iter().enumerate() {
            wa.write_buffered(page(id, 10 + i as u8)).unwrap();
        }
    });
    let wb = pool.clone();
    let ids_b = ids.clone();
    let tb = thread::spawn(move || {
        for (i, &id) in ids_b[4..].iter().enumerate() {
            wb.write_buffered(page(id, 20 + i as u8)).unwrap();
        }
        wb.flush().unwrap();
    });
    ta.join();
    tb.join();

    pool.flush().unwrap();
    pool.with_store(|probe| {
        for (i, &id) in ids.iter().enumerate() {
            let tag = if i < 4 {
                10 + i as u8
            } else {
                20 + (i - 4) as u8
            };
            assert_eq!(
                probe.disk.peek(id).unwrap().payload.as_ref(),
                &[tag],
                "buffered write to {id:?} was lost"
            );
        }
    });
}

#[test]
fn dirty_evictions_always_log_before_store_write() {
    explore_scenario(
        "wal-before-store",
        0x5741_4c5f_4f52_4452,
        wal_order_scenario,
    );
}

/// The deliberately-broken mutation: the store write happens *before* the
/// WAL append (the protocol with its two halves swapped). The probe must
/// catch it under every schedule, and the failure must surface through
/// `explore` as a plain panic so `#[should_panic]` composes.
fn broken_write_scenario() {
    let mut disk = DiskManager::new();
    let id = disk.allocate(meta(), Bytes::from_static(b"v1")).unwrap();
    let wal = Wal::shared(WalConfig::default());
    let mut probe = WalOrderProbe {
        disk,
        wal: wal.clone(),
    };
    let broken = page(id, 0xBB);
    let t = thread::spawn(move || {
        // wal-order-ok: this is the mutation under test — write-back first,
        // log second — and the probe inside `write` must reject it.
        probe.write(broken.clone()).unwrap();
        wal.lock().append_image(&broken).unwrap();
    });
    t.join();
}

#[test]
#[should_panic(expected = "WAL image must precede store write")]
fn store_write_before_wal_append_is_caught() {
    let cfg = ExploreConfig {
        target_distinct: 8,
        max_schedules: 8,
        ..ExploreConfig::new("broken-wal-order", 0x4252_4f4b_454e_0001)
    };
    explore(&cfg, broken_write_scenario);
}

/// A checkpoint races with a concurrent flush and more buffered writes.
/// Afterwards the WAL is replayed onto a snapshot of the store taken
/// *as-is* (dirty frames unflushed — a simulated crash): every page must
/// come back at its last logged image. If any interleaving let the
/// checkpoint record a redo horizon above a still-dirty frame's first
/// image, recovery would skip that image and this check would see stale
/// data.
fn checkpoint_scenario() {
    let (disk, ids) = disk_with_pages(6);
    let wal = Wal::shared(WalConfig::default());
    let probe = WalOrderProbe {
        disk,
        wal: wal.clone(),
    };
    let pool = ShardedBuffer::new(probe, PolicyKind::Lru, 6, 2);
    pool.attach_wal(wal.clone());
    for (i, &id) in ids[..4].iter().enumerate() {
        pool.write_buffered(page(id, 10 + i as u8)).unwrap();
    }

    let writer = pool.clone();
    let wids = ids.clone();
    let ta = thread::spawn(move || {
        writer.write_buffered(page(wids[4], 50)).unwrap();
        writer.flush().unwrap();
        // This frame stays dirty past the end of the scenario: the last
        // checkpoint's horizon must still cover it.
        writer.write_buffered(page(wids[5], 60)).unwrap();
    });
    let ck = pool.clone();
    let tb = thread::spawn(move || {
        ck.checkpoint().unwrap();
        ck.checkpoint().unwrap();
    });
    // A reader keeps both shards busy while the flush and the checkpoints
    // race, widening the interleaving space without touching the invariant.
    let reader = pool.clone();
    let rids = ids.clone();
    let tc = thread::spawn(move || {
        for (i, &id) in rids[..4].iter().enumerate() {
            reader
                .read(id, AccessContext::query(QueryId::new(200 + i as u64)))
                .unwrap();
        }
    });
    ta.join();
    tb.join();
    tc.join();

    let (records, _) = wal.lock().scan();
    let mut last_image: HashMap<PageId, Page> = HashMap::new();
    for rec in &records {
        if let WalRecord::Image { page, .. } = rec {
            last_image.insert(page.id, page.clone());
        }
    }
    let mut snapshot = pool.with_store(|probe| MapStore::snapshot_of(&probe.disk, &ids));
    wal.lock().recover_into(&mut snapshot).unwrap();
    for (id, img) in &last_image {
        assert_eq!(
            snapshot.get(*id).payload,
            img.payload,
            "recovery must restore {id:?} to its last logged image — \
             a checkpoint horizon abandoned a dirty frame"
        );
    }
}

#[test]
fn checkpoint_horizon_never_abandons_a_dirty_frame() {
    explore_scenario(
        "checkpoint-horizon",
        0x434b_5054_5f48_5a4e,
        checkpoint_scenario,
    );
}

/// Minimal in-memory [`PageStore`] used as the crash-recovery target: it
/// starts as a verbatim snapshot of the disk (including unflushed staleness)
/// and receives the WAL replay.
struct MapStore {
    pages: HashMap<PageId, Page>,
    next_id: u64,
}

impl MapStore {
    fn snapshot_of(disk: &DiskManager, ids: &[PageId]) -> Self {
        let pages = ids
            .iter()
            .map(|&id| (id, disk.peek(id).unwrap().clone()))
            .collect();
        MapStore {
            pages,
            next_id: ids.iter().map(|id| id.raw()).max().unwrap_or(0) + 1,
        }
    }

    fn get(&self, id: PageId) -> &Page {
        self.pages.get(&id).unwrap()
    }
}

impl PageStore for MapStore {
    fn read(&mut self, id: PageId, _ctx: AccessContext) -> Result<Page> {
        self.pages
            .get(&id)
            .cloned()
            .ok_or(StorageError::PageNotFound(id))
    }

    fn write(&mut self, pg: Page) -> Result<()> {
        self.pages.insert(pg.id, pg);
        Ok(())
    }

    fn allocate(&mut self, m: PageMeta, payload: Bytes) -> Result<PageId> {
        let id = PageId::new(self.next_id);
        self.next_id += 1;
        self.pages.insert(id, Page::new(id, m, payload)?);
        Ok(id)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.pages
            .remove(&id)
            .map(|_| ())
            .ok_or(StorageError::PageNotFound(id))
    }

    fn page_count(&self) -> usize {
        self.pages.len()
    }
}

// ---------------------------------------------------------------------------
// Determinism of the explorer itself.
// ---------------------------------------------------------------------------

#[test]
fn same_seed_replays_the_same_schedules() {
    let cfg = ExploreConfig {
        target_distinct: 64,
        max_schedules: 128,
        artifact_dir: None,
        ..ExploreConfig::new("determinism", 0x5345_4544_0000_0001)
    };
    let a = explore(&cfg, stats_scenario);
    let b = explore(&cfg, stats_scenario);
    assert_eq!(
        a, b,
        "two explorations with the same seed must run identical schedules"
    );

    let other = explore(
        &ExploreConfig {
            seed: cfg.seed ^ 0xFFFF,
            ..cfg.clone()
        },
        stats_scenario,
    );
    assert_ne!(
        a.digest, other.digest,
        "a different seed should explore a different schedule sequence"
    );
}

#[test]
fn page_id_routing_matches_between_runs() {
    // The schedule explorer relies on scenarios being pure functions of
    // their inputs; shard routing is the one hash involved, so pin down
    // that it is deterministic (no RandomState sneaking in).
    let (disk, ids) = disk_with_pages(16);
    let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 16, 2);
    for &id in &ids {
        pool.read(id, AccessContext::default()).unwrap();
    }
    let first = pool.shard_stats();
    let (disk, _) = disk_with_pages(16);
    let pool = ShardedBuffer::new(disk, PolicyKind::Lru, 16, 2);
    for &id in &ids {
        pool.read(id, AccessContext::default()).unwrap();
    }
    assert_eq!(first, pool.shard_stats());
}
