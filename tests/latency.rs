//! Property-based tests for the serving layer's latency histogram
//! (`asb::serve::LatencyHistogram`): the fixed-bucket log-scale layout
//! must estimate quantiles within its advertised relative error, merge
//! associatively and commutatively (per-shard histograms sum into the
//! pool-wide one in any order), and keep percentiles monotone.

use asb::serve::{LatencyHistogram, RELATIVE_ERROR, SUB_BUCKETS};
use proptest::prelude::*;

/// Latency samples spanning the scales the serving engine produces:
/// sub-bucket exact values, mid-range ticks, and heavy-tail outliers.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            0u64..16,
            16u64..4096,
            4096u64..1_000_000,
            1_000_000u64..u64::MAX / 2,
        ],
        1..200,
    )
}

fn build(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// The exact `q`-quantile of a value set: the `⌈q·n⌉`-th smallest value,
/// matching the histogram's rank convention.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A quantile estimate never undershoots the exact quantile (it
    /// reports a bucket upper bound) and overshoots by at most one
    /// bucket's width: exact below [`SUB_BUCKETS`], within
    /// [`RELATIVE_ERROR`] relative above.
    #[test]
    fn quantiles_are_within_one_bucket(values in samples(), qs in prop::collection::vec(0.0f64..1.0, 1..8)) {
        let h = build(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in qs {
            let est = h.quantile(q);
            let exact = exact_quantile(&sorted, q);
            prop_assert!(est >= exact, "q={q}: estimate {est} under exact {exact}");
            if exact < SUB_BUCKETS as u64 {
                prop_assert_eq!(est, exact, "sub-bucket values are exact");
            } else {
                let err = est - exact;
                prop_assert!(
                    (err as f64) <= exact as f64 * RELATIVE_ERROR,
                    "q={q}: estimate {est} vs exact {exact} (err {err})"
                );
            }
        }
    }

    /// Merging is commutative and associative, and merging equals
    /// recording the concatenated sample set directly — so per-shard
    /// histograms can be combined in any grouping.
    #[test]
    fn merge_is_order_independent(a in samples(), b in samples(), c in samples()) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));

        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba, "merge must commute");

        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "merge must associate");

        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&ab_c, &build(&all), "merge must equal direct recording");
        prop_assert_eq!(ab_c.total(), (a.len() + b.len() + c.len()) as u64);
    }

    /// Percentiles are monotone in the quantile: p50 ≤ p99 ≤ p999 ≤ max.
    #[test]
    fn percentiles_are_monotone(values in samples()) {
        let h = build(&values);
        prop_assert!(h.p50() <= h.p99());
        prop_assert!(h.p99() <= h.p999());
        let max = *values.iter().max().expect("non-empty");
        // p999 reports max's bucket upper bound at worst.
        let bound = if max < SUB_BUCKETS as u64 {
            max
        } else {
            max + (max as f64 * RELATIVE_ERROR) as u64
        };
        prop_assert!(h.p999() <= bound, "p999 {} vs max {max}", h.p999());
    }
}
