//! Cross-policy laws: classic results from the caching literature that the
//! implementation must respect.

use asb::buffer::{ArenaParams, AsbParams, BufferManager, PolicyKind, Roster, SpatialCriterion};
use asb::geom::{Rect, SpatialStats};
use asb::storage::{AccessContext, DiskManager, PageId, PageMeta, PageStore, QueryId};
use bytes::Bytes;
use proptest::prelude::*;

fn build_disk(pages: u64) -> (DiskManager, Vec<PageId>) {
    let mut disk = DiskManager::new();
    let ids = (0..pages)
        .map(|i| {
            let r = Rect::new(0.0, 0.0, (i % 19) as f64 + 0.5, (i % 5) as f64 + 0.5);
            disk.allocate(PageMeta::data(SpatialStats::from_rects(&[r])), Bytes::new())
                .expect("allocate")
        })
        .collect();
    (disk, ids)
}

fn misses(policy: PolicyKind, capacity: usize, trace: &[(usize, u64)], ids: &[PageId]) -> u64 {
    let (mut disk, _) = {
        // Rebuild the same disk so physical state is identical per run.
        build_disk(ids.len() as u64)
    };
    let mut buf = BufferManager::with_policy(policy, capacity);
    for &(slot, q) in trace {
        buf.fetch(&mut disk, ids[slot], AccessContext::query(QueryId::new(q)))
            .expect("read");
    }
    buf.stats().misses
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// LRU is a stack algorithm: a larger buffer never misses more on the
    /// same trace (the inclusion property). FIFO famously violates this
    /// (Bélády's anomaly), which is why the law is asserted for LRU only.
    #[test]
    fn lru_inclusion_property(
        trace in prop::collection::vec((0usize..40, 0u64..10), 1..500),
        capacity in 1usize..30,
        extra in 1usize..10,
    ) {
        let (_, ids) = build_disk(40);
        let small = misses(PolicyKind::Lru, capacity, &trace, &ids);
        let large = misses(PolicyKind::Lru, capacity + extra, &trace, &ids);
        prop_assert!(
            large <= small,
            "inclusion violated: {large} misses at {capacity}+{extra} vs {small} at {capacity}"
        );
    }

    /// Any policy's miss count is bounded below by cold misses (distinct
    /// pages) and above by the trace length.
    #[test]
    fn miss_bounds_hold_for_every_policy(
        trace in prop::collection::vec((0usize..40, 0u64..10), 1..300),
        capacity in 1usize..30,
    ) {
        let (_, ids) = build_disk(40);
        let distinct = {
            let mut v: Vec<usize> = trace.iter().map(|&(s, _)| s).collect();
            v.sort_unstable();
            v.dedup();
            v.len() as u64
        };
        for policy in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Clock,
            PolicyKind::TwoQ,
            PolicyKind::LruK { k: 2 },
            PolicyKind::Spatial(SpatialCriterion::Area),
            PolicyKind::Asb,
            PolicyKind::Arena,
        ] {
            let m = misses(policy, capacity, &trace, &ids);
            prop_assert!(m >= distinct, "{policy:?}: fewer misses than cold misses");
            prop_assert!(m <= trace.len() as u64, "{policy:?}: more misses than accesses");
        }
    }

    /// With a buffer at least as large as the working set, every policy
    /// converges to exactly the cold misses.
    #[test]
    fn all_policies_are_optimal_without_pressure(
        trace in prop::collection::vec((0usize..20, 0u64..10), 1..300),
    ) {
        let (_, ids) = build_disk(20);
        for policy in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::TwoQ,
            PolicyKind::LruK { k: 3 },
            PolicyKind::Spatial(SpatialCriterion::Margin),
            PolicyKind::Asb,
            PolicyKind::Arena,
        ] {
            let m = misses(policy, 20, &trace, &ids);
            let distinct = {
                let mut v: Vec<usize> = trace.iter().map(|&(s, _)| s).collect();
                v.sort_unstable();
                v.dedup();
                v.len() as u64
            };
            prop_assert_eq!(m, distinct, "{:?} missed under no pressure", policy);
        }
    }
}

#[test]
fn policy_kinds_serialize_roundtrip() {
    let kinds = [
        PolicyKind::Lru,
        PolicyKind::Random { seed: 99 },
        PolicyKind::TwoQ,
        PolicyKind::LruK { k: 5 },
        PolicyKind::Spatial(SpatialCriterion::EntryOverlap),
        PolicyKind::Slru {
            candidate_fraction: 0.25,
            criterion: SpatialCriterion::Area,
        },
        PolicyKind::Asb,
        PolicyKind::AsbWith(AsbParams {
            overflow_fraction: 0.3,
            initial_candidate_fraction: 0.5,
            step_fraction: 0.02,
            criterion: SpatialCriterion::Margin,
        }),
        PolicyKind::Arena,
        PolicyKind::ArenaWith(ArenaParams {
            decay: 0.1,
            share: 0.01,
            roster: Roster::Lean,
        }),
    ];
    for kind in kinds {
        let json = serde_json::to_string(&kind).expect("serialize");
        let back: PolicyKind = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, kind);
        // A deserialized kind builds the same-named policy.
        assert_eq!(back.build(64).name(), kind.label());
    }
}

/// The identical trace through the same policy gives identical statistics —
/// determinism that the experiment harness relies on.
#[test]
fn runs_are_deterministic() {
    let (_, ids) = build_disk(50);
    let trace: Vec<(usize, u64)> = (0..2000u64)
        .map(|i| (((i * 31 + i * i % 7) % 50) as usize, i / 9))
        .collect();
    for policy in [
        PolicyKind::Random { seed: 5 },
        PolicyKind::Asb,
        PolicyKind::LruK { k: 2 },
        PolicyKind::TwoQ,
        PolicyKind::Arena,
    ] {
        let a = misses(policy, 12, &trace, &ids);
        let b = misses(policy, 12, &trace, &ids);
        assert_eq!(a, b, "{policy:?} must be deterministic");
    }
}

// ---------------------------------------------------------------------------
// ASB adaptation invariants (paper §4.2), under arbitrary access sequences
// and under injected faults.
// ---------------------------------------------------------------------------

/// The paper's sizing rules, recomputed independently of the policy code.
fn asb_bounds(capacity: usize) -> (usize, usize, usize) {
    let overflow_cap = ((capacity as f64 * 0.2).round() as usize).min(capacity - 1);
    let main_cap = capacity - overflow_cap;
    let step = ((main_cap as f64 * 0.01).round() as usize).max(1);
    (main_cap, overflow_cap, step)
}

/// Asserts the per-access ASB invariants over one trace; returns the final
/// candidate size. `prev` threads the candidate size across calls.
fn check_asb_invariants(
    buf: &asb::buffer::BufferManager,
    capacity: usize,
    prev: &mut Option<usize>,
    prev_overflow: &mut Vec<PageId>,
) -> Result<(), TestCaseError> {
    let (main_cap, overflow_cap, step) = asb_bounds(capacity);
    let c = buf.candidate_size().expect("ASB exposes a candidate size");
    prop_assert!(
        (1..=main_cap).contains(&c),
        "candidate size {c} outside [1, {main_cap}]"
    );
    if let Some(p) = *prev {
        let delta = c.abs_diff(p);
        prop_assert!(
            delta <= step,
            "candidate moved by {delta} > step {step} in one access"
        );
    }
    *prev = Some(c);

    let (overflow, cap) = buf.overflow_state().expect("ASB exposes its overflow");
    prop_assert_eq!(cap, overflow_cap, "overflow capacity drifted");
    prop_assert!(
        overflow.len() <= overflow_cap,
        "overflow holds {} > cap {}",
        overflow.len(),
        overflow_cap
    );
    // FIFO shape: surviving pages keep their relative order, and pages new
    // to the overflow only ever appear behind all survivors.
    let survivors: Vec<PageId> = prev_overflow
        .iter()
        .copied()
        .filter(|id| overflow.contains(id))
        .collect();
    prop_assert!(
        overflow.starts_with(&survivors),
        "overflow violated FIFO order: {prev_overflow:?} -> {overflow:?}"
    );
    *prev_overflow = overflow;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The candidate set stays within the paper's bounds and never moves by
    /// more than one adaptation step per access; the overflow buffer never
    /// exceeds its 20% capacity and behaves as a FIFO.
    #[test]
    fn asb_adaptation_invariants_hold(
        trace in prop::collection::vec((0usize..40, 0u64..10), 1..400),
        capacity in 5usize..30,
    ) {
        let (mut disk, ids) = build_disk(40);
        let mut buf = BufferManager::with_policy(PolicyKind::Asb, capacity);
        let mut prev = None;
        let mut prev_overflow = Vec::new();
        for &(slot, q) in &trace {
            buf.fetch(&mut disk, ids[slot], AccessContext::query(QueryId::new(q)))
                .expect("read");
            check_asb_invariants(&buf, capacity, &mut prev, &mut prev_overflow)?;
        }
    }

    /// The same invariants hold while the store injects transient faults,
    /// corruption and latency spikes: robustness must not bend the paper's
    /// adaptation rules.
    #[test]
    fn asb_invariants_survive_injected_faults(
        trace in prop::collection::vec((0usize..40, 0u64..10), 1..300),
        capacity in 5usize..30,
        fault_seed in 0u64..1000,
    ) {
        use asb::storage::{FaultConfig, FaultyStore, RetryPolicy, StorageError};
        let (disk, ids) = build_disk(40);
        let mut store = FaultyStore::new(disk, FaultConfig::chaos(fault_seed, 0.1));
        let mut buf = BufferManager::with_policy(PolicyKind::Asb, capacity);
        buf.set_retry_policy(RetryPolicy {
            max_attempts: 6,
            base_backoff_ms: 0.1,
            backoff_multiplier: 2.0,
        });
        let mut prev = None;
        let mut prev_overflow = Vec::new();
        for &(slot, q) in &trace {
            match buf.fetch(&mut store, ids[slot], AccessContext::query(QueryId::new(q))) {
                Ok(page) => prop_assert!(page.verify_checksum(), "corrupt page served"),
                Err(StorageError::RetriesExhausted { .. }) => {} // give-up is allowed
                Err(other) => return Err(TestCaseError::fail(format!("unexpected: {other:?}"))),
            }
            check_asb_invariants(&buf, capacity, &mut prev, &mut prev_overflow)?;
        }
    }
}

// ---------------------------------------------------------------------------
// Expert-arena mixer laws (multiplicative weights over a policy roster),
// under arbitrary access sequences.
// ---------------------------------------------------------------------------

/// Runs one trace through an arena buffer and returns the final buffer —
/// callers inspect `arena_state()` / `retained_history()` / `stats()`.
fn arena_run(
    params: ArenaParams,
    capacity: usize,
    trace: &[(usize, u64)],
    ids: &[asb::storage::PageId],
) -> BufferManager {
    let (mut disk, _) = build_disk(ids.len() as u64);
    let mut buf = BufferManager::with_policy(PolicyKind::ArenaWith(params), capacity);
    for &(slot, q) in trace {
        buf.fetch(&mut disk, ids[slot], AccessContext::query(QueryId::new(q)))
            .expect("read");
    }
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After every trace the expert weights form a probability vector —
    /// strictly positive and summing to one — and the reported leader is
    /// the argmax of the weights (lowest index on ties).
    #[test]
    fn arena_weights_are_normalized_and_leader_is_argmax(
        trace in prop::collection::vec((0usize..40, 0u64..10), 1..400),
        capacity in 2usize..24,
        lean in 0u8..2,
    ) {
        let (_, ids) = build_disk(40);
        let params = ArenaParams {
            roster: if lean == 1 { Roster::Lean } else { Roster::Full },
            ..ArenaParams::default()
        };
        let state = arena_run(params, capacity, &trace, &ids)
            .arena_state()
            .expect("arena exposes its state");
        let weights = state.weights();
        let sum: f64 = weights.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "weights sum to {sum}");
        prop_assert!(weights.iter().all(|&w| w > 0.0), "non-positive weight in {weights:?}");
        let argmax = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap();
        prop_assert_eq!(state.leader, argmax, "leader is not the weight argmax");
    }

    /// With decay and share both zero the weights never move, so the
    /// leader stays expert zero forever and the arena's evictions are
    /// bit-identical to running that expert alone: same misses on every
    /// trace. (Lean roster's expert zero is plain LRU.)
    #[test]
    fn arena_with_zero_decay_is_its_first_expert(
        trace in prop::collection::vec((0usize..40, 0u64..10), 1..400),
        capacity in 2usize..24,
    ) {
        let (_, ids) = build_disk(40);
        let params = ArenaParams { decay: 0.0, share: 0.0, roster: Roster::Lean };
        let buf = arena_run(params, capacity, &trace, &ids);
        let state = buf.arena_state().expect("arena state");
        prop_assert_eq!(state.leader, 0, "zero-decay leader moved");
        prop_assert_eq!(state.switches, 0, "zero-decay arena switched authority");
        let lru = misses(PolicyKind::Lru, capacity, &trace, &ids);
        prop_assert_eq!(buf.stats().misses, lru, "zero-decay arena diverged from LRU");
    }

    /// Ghost memory stays bounded: every expert's ghost cache holds at
    /// most `capacity` pages (ISSUE bound: 1x buffer capacity per expert),
    /// and the unified `retained_history` count — ghosts plus the
    /// mirrored/simulated policies' own history — stays within the
    /// documented 3x-roster-capacity envelope.
    #[test]
    fn arena_ghost_memory_is_bounded(
        trace in prop::collection::vec((0usize..60, 0u64..10), 1..500),
        capacity in 2usize..20,
        lean in 0u8..2,
    ) {
        let (_, ids) = build_disk(60);
        let roster = if lean == 1 { Roster::Lean } else { Roster::Full };
        let params = ArenaParams { roster, ..ArenaParams::default() };
        let buf = arena_run(params, capacity, &trace, &ids);
        let state = buf.arena_state().expect("arena state");
        for e in &state.experts {
            prop_assert!(
                e.ghost_len <= capacity,
                "expert {} ghost cache holds {} > capacity {capacity}",
                e.label,
                e.ghost_len
            );
        }
        let bound = 3 * roster.len() * capacity;
        let retained = buf.retained_history();
        prop_assert!(
            retained <= bound,
            "retained history {retained} exceeds bound {bound}"
        );
    }
}
