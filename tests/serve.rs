//! Integration tests for the batched serving front end (`asb-serve`),
//! exercised through the umbrella crate the way applications see it.
//!
//! Three families:
//!
//! * **determinism** — the full serve loop (request order, per-session
//!   statistics, histogram contents) is a pure function of its seeds:
//!   same seed, bit-for-bit equal outcome;
//! * **query equivalence** — a served request answers exactly what the
//!   direct R\*-tree operation answers (windows via `window_query`, k-NN
//!   via `nearest_neighbors`, joins via brute force over the dataset);
//! * **sharded vs sequential** — a one-shard striped pool serves the
//!   workload with statistics and responses identical to the coarse-mutex
//!   `SharedBuffer`, mirroring `tests/sharded.rs` for the batched path.

use asb::buffer::{BufferManager, BufferPool, PolicyKind, ShardedBuffer, SharedBuffer};
use asb::rtree::RTree;
use asb::serve::{serve, ServeConfig, ServeOutcome};
use asb::storage::DiskManager;
use asb::workload::{
    session_requests, Dataset, DatasetKind, Request, RequestMix, Scale, SessionSpec,
};

const SEED: u64 = 7;
const CAPACITY: usize = 24;

fn dataset() -> Dataset {
    Dataset::generate(DatasetKind::Mainland, Scale::Tiny, SEED)
}

fn streams(dataset: &Dataset, sessions: usize, steps: usize) -> Vec<Vec<Request>> {
    (0..sessions as u64)
        .map(|i| {
            session_requests(
                dataset,
                SessionSpec::default(),
                RequestMix::browsing(),
                steps,
                SEED + i,
            )
        })
        .collect()
}

/// Serves `sessions` through a fresh sharded pool over a fresh tree.
fn serve_sharded(dataset: &Dataset, sessions: &[Vec<Request>], shards: usize) -> ServeOutcome {
    let tree = RTree::bulk_load(DiskManager::new(), dataset.items()).expect("bulk load");
    let snapshot = tree.snapshot();
    let pool = ShardedBuffer::new(tree.into_store(), PolicyKind::Asb, CAPACITY, shards);
    serve(&pool, &snapshot, sessions, &ServeConfig::default()).expect("serve")
}

#[test]
fn same_seed_serves_bit_for_bit_identically() {
    let dataset = dataset();
    let sessions = streams(&dataset, 24, 6);
    let a = serve_sharded(&dataset, &sessions, 4);
    let b = serve_sharded(&dataset, &sessions, 4);
    // ServeOutcome derives PartialEq over everything: response order,
    // latencies, per-session stats and raw histogram buckets.
    assert_eq!(a, b);
    assert_eq!(a.report.requests, 24 * 6);
    assert!(!a.report.histogram.is_empty());
    assert!(a.report.p50_ticks <= a.report.p99_ticks);
    assert!(a.report.p99_ticks <= a.report.p999_ticks);
}

#[test]
fn request_results_do_not_depend_on_shard_count() {
    let dataset = dataset();
    let sessions = streams(&dataset, 12, 5);
    let one = serve_sharded(&dataset, &sessions, 1);
    let four = serve_sharded(&dataset, &sessions, 4);
    // Timing (and thus completion order) may differ across shard counts,
    // but every request's answer must not.
    let key = |o: &ServeOutcome| {
        let mut v: Vec<_> = o
            .responses
            .iter()
            .map(|r| (r.session, r.seq, r.kind, r.results.clone()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(key(&one), key(&four));
}

/// Brute-force window-restricted self-join: unordered pairs of distinct
/// dataset objects that both intersect the region and each other.
fn brute_join_count(dataset: &Dataset, region: &asb::geom::Rect) -> u64 {
    let items = dataset.items();
    let mut count = 0u64;
    for (i, x) in items.iter().enumerate() {
        if !x.mbr.intersects(region) {
            continue;
        }
        for y in &items[i + 1..] {
            if y.mbr.intersects(region) && x.mbr.intersects(&y.mbr) {
                count += 1;
            }
        }
    }
    count
}

#[test]
fn served_answers_match_direct_queries() {
    let dataset = dataset();
    // One session: its responses are directly comparable to running the
    // same requests against the tree, one at a time.
    let sessions = streams(&dataset, 1, 40);
    let outcome = serve_sharded(&dataset, &sessions, 2);
    assert_eq!(outcome.responses.len(), 40);

    let mut tree = RTree::bulk_load(DiskManager::new(), dataset.items()).expect("bulk load");
    let mut kinds_seen = std::collections::BTreeSet::new();
    for resp in &outcome.responses {
        kinds_seen.insert(resp.kind);
        match &sessions[0][resp.seq] {
            Request::Window(region) => {
                let mut direct = tree.window_query(*region).expect("window query");
                direct.sort_unstable();
                assert_eq!(resp.results, direct, "window seq {}", resp.seq);
            }
            Request::Nearest(p, k) => {
                let direct = tree.nearest_neighbors(*p, *k).expect("knn");
                let ids: Vec<u64> = direct.iter().map(|&(id, _)| id).collect();
                // The engine mirrors the tree's best-first heap exactly,
                // so even the order of equidistant neighbours matches.
                assert_eq!(resp.results, ids, "knn seq {}", resp.seq);
            }
            Request::Join(region) => {
                assert_eq!(
                    resp.results,
                    vec![brute_join_count(&dataset, region)],
                    "join seq {}",
                    resp.seq
                );
            }
        }
    }
    // The browsing mix must actually have exercised all three kinds.
    assert_eq!(
        kinds_seen.into_iter().collect::<Vec<_>>(),
        vec!["join", "nearest", "window"]
    );
}

#[test]
fn one_shard_pool_serves_identically_to_shared_buffer() {
    let dataset = dataset();
    let sessions = streams(&dataset, 16, 5);
    let cfg = ServeConfig::default();

    let tree = RTree::bulk_load(DiskManager::new(), dataset.items()).expect("bulk load");
    let snapshot = tree.snapshot();
    let shared = SharedBuffer::new(
        tree.into_store(),
        BufferManager::with_policy(PolicyKind::Asb, CAPACITY),
    );
    let a = serve(&shared, &snapshot, &sessions, &cfg).expect("serve shared");

    let tree = RTree::bulk_load(DiskManager::new(), dataset.items()).expect("bulk load");
    let snapshot = tree.snapshot();
    let sharded = ShardedBuffer::new(tree.into_store(), PolicyKind::Asb, CAPACITY, 1);
    let b = serve(&sharded, &snapshot, &sessions, &cfg).expect("serve sharded");

    // With one shard both pools run the identical two-phase batch over
    // the same sequential buffer manager: the full outcome — responses,
    // latencies, histogram, per-session hit rates — must be equal, and so
    // must the pools' own accounting.
    assert_eq!(a, b);
    assert_eq!(shared.stats(), BufferPool::stats(&sharded));
    assert_eq!(
        BufferPool::io_stats(&shared).reads,
        BufferPool::io_stats(&sharded).reads
    );
    assert_eq!(shared.live_guards(), 0);
    assert_eq!(sharded.live_guards(), 0);
}
