//! Property-based tests over the core invariants.

use asb::buffer::{BufferManager, PolicyKind, SpatialCriterion};
use asb::geom::{Point, Query, Rect, SpatialItem, SpatialStats};
use asb::rtree::{RTree, RTreeConfig};
use asb::storage::{AccessContext, DiskManager, PageStore, QueryId};
use proptest::prelude::*;

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (0.0f64..1000.0, 0.0f64..1000.0, 0.0f64..50.0, 0.0f64..50.0)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn point_strategy() -> impl Strategy<Value = Point> {
    (-100.0f64..1100.0, -100.0f64..1100.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Union covers both operands and is commutative & idempotent.
    #[test]
    fn union_laws(a in rect_strategy(), b in rect_strategy()) {
        let u = a.union(&b);
        prop_assert!(u.contains(&a) && u.contains(&b));
        prop_assert_eq!(u, b.union(&a));
        prop_assert_eq!(a.union(&a), a);
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
    }

    /// Intersection is symmetric, contained in both, and consistent with
    /// `intersects` / `overlap_area`.
    #[test]
    fn intersection_laws(a in rect_strategy(), b in rect_strategy()) {
        match a.intersection(&b) {
            Some(i) => {
                prop_assert!(a.intersects(&b));
                prop_assert!(a.contains(&i) && b.contains(&i));
                prop_assert!((i.area() - a.overlap_area(&b)).abs() < 1e-9);
                prop_assert_eq!(Some(i), b.intersection(&a));
            }
            None => {
                prop_assert!(!a.intersects(&b));
                prop_assert_eq!(a.overlap_area(&b), 0.0);
            }
        }
    }

    /// Enlargement is non-negative and zero exactly under containment.
    #[test]
    fn enlargement_laws(a in rect_strategy(), b in rect_strategy()) {
        let e = a.enlargement(&b);
        prop_assert!(e >= -1e-9);
        if a.contains(&b) {
            prop_assert!(e.abs() < 1e-9);
        }
    }

    /// min_dist is zero iff the point is inside (closed semantics).
    #[test]
    fn min_dist_laws(r in rect_strategy(), p in point_strategy()) {
        let d = r.min_dist(&p);
        prop_assert!(d >= 0.0);
        prop_assert_eq!(d == 0.0, r.contains_point(&p));
    }

    /// Hilbert keys are a bijection on the grid.
    #[test]
    fn hilbert_bijection(x in 0u32..=u32::MAX, y in 0u32..=u32::MAX) {
        use asb::geom::curve::{hilbert, hilbert_inverse};
        prop_assert_eq!(hilbert_inverse(hilbert(x, y)), (x, y));
    }

    /// Z-order keys are a bijection on the grid.
    #[test]
    fn z_order_bijection(x in 0u32..=u32::MAX, y in 0u32..=u32::MAX) {
        use asb::geom::curve::{z_order, z_order_inverse};
        prop_assert_eq!(z_order_inverse(z_order(x, y)), (x, y));
    }

    /// Page spatial statistics: the page MBR covers all entries and the
    /// criteria are monotone under adding an entry.
    #[test]
    fn spatial_stats_monotone(rects in prop::collection::vec(rect_strategy(), 1..20),
                              extra in rect_strategy()) {
        let base = SpatialStats::from_rects(&rects);
        let mut grown = rects.clone();
        grown.push(extra);
        let bigger = SpatialStats::from_rects(&grown);
        for c in SpatialCriterion::ALL {
            prop_assert!(bigger.criterion(c) + 1e-9 >= base.criterion(c), "{c}");
        }
        let mbr = base.mbr.unwrap();
        for r in &rects {
            prop_assert!(mbr.contains(r));
        }
    }
}

/// Strategy for a mixed insert/delete/query op sequence.
#[derive(Debug, Clone)]
enum Op {
    Insert(Rect),
    DeleteNth(usize),
    Window(Rect),
    Point(Point),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => rect_strategy().prop_map(Op::Insert),
        1 => (0usize..500).prop_map(Op::DeleteNth),
        1 => rect_strategy().prop_map(Op::Window),
        1 => point_strategy().prop_map(Op::Point),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The R*-tree stays structurally valid and agrees with a brute-force
    /// model under arbitrary interleavings of inserts, deletes and queries.
    #[test]
    fn rtree_matches_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut tree = RTree::with_config(DiskManager::new(), RTreeConfig::small()).unwrap();
        let mut model: Vec<SpatialItem> = Vec::new();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                Op::Insert(mbr) => {
                    tree.insert(SpatialItem::new(next_id, mbr)).unwrap();
                    model.push(SpatialItem::new(next_id, mbr));
                    next_id += 1;
                }
                Op::DeleteNth(n) => {
                    if !model.is_empty() {
                        let victim = model.remove(n % model.len());
                        prop_assert!(tree.delete(victim.id, &victim.mbr).unwrap());
                    }
                }
                Op::Window(w) => {
                    let mut got = tree.window_query(w).unwrap();
                    got.sort_unstable();
                    let mut want: Vec<u64> = model.iter()
                        .filter(|it| it.mbr.intersects(&w)).map(|it| it.id).collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
                Op::Point(p) => {
                    let mut got = tree.point_query(p).unwrap();
                    got.sort_unstable();
                    let mut want: Vec<u64> = model.iter()
                        .filter(|it| it.mbr.contains_point(&p)).map(|it| it.id).collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
            }
        }
        tree.validate().map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(tree.len(), model.len());
    }
}

/// All policies to fuzz below.
fn fuzz_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Clock,
        PolicyKind::Random { seed: 3 },
        PolicyKind::LruT,
        PolicyKind::LruP,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Spatial(SpatialCriterion::Area),
        PolicyKind::Spatial(SpatialCriterion::EntryOverlap),
        PolicyKind::Slru {
            candidate_fraction: 0.3,
            criterion: SpatialCriterion::Margin,
        },
        PolicyKind::Asb,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Buffer-of-any-policy transparency: an arbitrary read trace through a
    /// buffer returns exactly the pages the raw disk returns, never exceeds
    /// capacity, and keeps its counters consistent.
    #[test]
    fn buffers_are_transparent_caches(
        accesses in prop::collection::vec((0usize..60, 0u64..20), 1..400),
        capacity in 1usize..24,
    ) {
        // A little disk of 60 pages with varying spatial stats.
        let mut disk = DiskManager::new();
        let mut ids = Vec::new();
        for i in 0..60u64 {
            let r = Rect::new(0.0, 0.0, (i % 13) as f64 + 0.5, (i % 7) as f64 + 0.5);
            let meta = asb::storage::PageMeta::data(SpatialStats::from_rects(&[r]));
            ids.push(disk.allocate(meta, bytes::Bytes::from(vec![i as u8])).unwrap());
        }
        for policy in fuzz_policies() {
            let mut buf = BufferManager::with_policy(policy, capacity);
            for &(slot, query) in &accesses {
                let id = ids[slot];
                let ctx = AccessContext::query(QueryId::new(query));
                let page = buf.fetch(&mut disk, id, ctx).unwrap();
                prop_assert_eq!(page.id, id);
                prop_assert_eq!(page.payload.as_ref(), &[slot as u8][..]);
                prop_assert!(buf.resident() <= capacity);
            }
            let s = buf.stats();
            prop_assert_eq!(s.hits + s.misses, s.logical_reads);
            prop_assert_eq!(s.logical_reads, accesses.len() as u64);
        }
    }

    /// ASB-specific invariants under arbitrary traces: candidate size stays
    /// in [1, main capacity] and no ghost history accumulates.
    #[test]
    fn asb_invariants(
        accesses in prop::collection::vec((0usize..80, 0u64..10), 1..500),
        capacity in 2usize..30,
    ) {
        let mut disk = DiskManager::new();
        let mut ids = Vec::new();
        for i in 0..80u64 {
            let r = Rect::new(0.0, 0.0, (i % 17) as f64 + 0.5, 1.0);
            let meta = asb::storage::PageMeta::data(SpatialStats::from_rects(&[r]));
            ids.push(disk.allocate(meta, bytes::Bytes::new()).unwrap());
        }
        let mut buf = BufferManager::with_policy(PolicyKind::Asb, capacity);
        let main_cap = capacity - ((capacity as f64 * 0.2).round() as usize).min(capacity - 1);
        for &(slot, query) in &accesses {
            buf.fetch(&mut disk, ids[slot], AccessContext::query(QueryId::new(query)))
                .unwrap();
            let c = buf.candidate_size().unwrap();
            prop_assert!(c >= 1 && c <= main_cap, "candidate {c} vs main {main_cap}");
            prop_assert_eq!(buf.retained_history(), 0);
        }
    }

    /// A window query through a buffered tree equals the query on the bare
    /// tree for arbitrary windows (tree built once per case).
    #[test]
    fn buffered_queries_equal_unbuffered(
        windows in prop::collection::vec(rect_strategy(), 1..30),
        capacity in 4usize..40,
    ) {
        let items: Vec<SpatialItem> = (0..300u64)
            .map(|i| {
                let x = (i as f64 * 37.0) % 950.0;
                let y = (i as f64 * 91.0) % 950.0;
                SpatialItem::new(i, Rect::new(x, y, x + 10.0, y + 10.0))
            })
            .collect();
        let mut plain =
            RTree::bulk_load_with(DiskManager::new(), RTreeConfig::small(), &items).unwrap();
        let mut buffered =
            RTree::bulk_load_with(DiskManager::new(), RTreeConfig::small(), &items).unwrap();
        buffered.set_buffer(BufferManager::with_policy(PolicyKind::Asb, capacity));
        for w in windows {
            let mut a = plain.execute(&Query::Window(w)).unwrap();
            let mut b = buffered.execute(&Query::Window(w)).unwrap();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}
