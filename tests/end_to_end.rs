//! Cross-crate integration tests: dataset → R*-tree → buffer → queries.

use asb::buffer::{BufferManager, PolicyKind, SpatialCriterion};
use asb::geom::Query;
use asb::rtree::{RTree, RTreeItem};
use asb::storage::DiskManager;
use asb::workload::{Dataset, DatasetKind, QueryKind, QuerySetSpec, Scale};

fn all_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Clock,
        PolicyKind::Random { seed: 9 },
        PolicyKind::LruT,
        PolicyKind::LruP,
        PolicyKind::TwoQ,
        PolicyKind::LruK { k: 2 },
        PolicyKind::LruK { k: 3 },
        PolicyKind::LruK { k: 5 },
        PolicyKind::Spatial(SpatialCriterion::Area),
        PolicyKind::Spatial(SpatialCriterion::EntryArea),
        PolicyKind::Spatial(SpatialCriterion::Margin),
        PolicyKind::Spatial(SpatialCriterion::EntryMargin),
        PolicyKind::Spatial(SpatialCriterion::EntryOverlap),
        PolicyKind::Slru {
            candidate_fraction: 0.25,
            criterion: SpatialCriterion::Area,
        },
        PolicyKind::Slru {
            candidate_fraction: 0.5,
            criterion: SpatialCriterion::Area,
        },
        PolicyKind::Asb,
    ]
}

fn brute_force(items: &[RTreeItem], q: &Query) -> Vec<u64> {
    let mut ids: Vec<u64> = items
        .iter()
        .filter(|it| q.matches(&it.mbr))
        .map(|it| it.id)
        .collect();
    ids.sort_unstable();
    ids
}

/// Every policy, same tree, same queries: identical answers, bounded
/// buffer, and exactly `misses` physical reads.
#[test]
fn every_policy_is_transparent_and_bounded() {
    let dataset = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 5);
    let queries: Vec<Query> = {
        let mut v = QuerySetSpec::uniform_windows(33).generate(&dataset, 120, 1);
        v.extend(QuerySetSpec::identical_points().generate(&dataset, 120, 2));
        v.extend(
            QuerySetSpec::intensified(QueryKind::Window { ex: 100 }).generate(&dataset, 120, 3),
        );
        v
    };
    let expected: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| brute_force(dataset.items(), q))
        .collect();

    for policy in all_policies() {
        let mut tree = RTree::bulk_load(DiskManager::new(), dataset.items()).expect("bulk load");
        let capacity = (tree.page_count() / 20).max(4);
        tree.set_buffer(BufferManager::with_policy(policy, capacity));
        tree.store_mut().reset_stats();
        for (q, want) in queries.iter().zip(&expected) {
            let mut got = tree.execute(q).expect("query");
            got.sort_unstable();
            assert_eq!(&got, want, "{policy:?} changed query answers");
        }
        let disk = tree.store().stats();
        let buf = tree.take_buffer().expect("buffer attached");
        let stats = buf.stats();
        assert!(
            buf.resident() <= capacity,
            "{policy:?} overflowed the buffer"
        );
        assert_eq!(stats.hits + stats.misses, stats.logical_reads, "{policy:?}");
        assert_eq!(
            stats.misses, disk.reads,
            "{policy:?}: misses must equal disk reads"
        );
        assert!(stats.hits > 0, "{policy:?} should hit at least the root");
    }
}

/// Insertion-built and bulk-loaded trees answer queries identically.
#[test]
fn insertion_and_bulk_load_agree() {
    let dataset = Dataset::generate(DatasetKind::World, Scale::Tiny, 6);
    let items = &dataset.items()[..600];
    let mut bulk = RTree::bulk_load(DiskManager::new(), items).expect("bulk");
    let mut incremental = RTree::new(DiskManager::new()).expect("empty tree");
    for &it in items {
        incremental.insert(it).expect("insert");
    }
    incremental.validate().expect("incremental tree valid");
    bulk.validate().expect("bulk tree valid");
    for q in QuerySetSpec::uniform_windows(33).generate(&dataset, 60, 4) {
        let mut a = bulk.execute(&q).expect("bulk query");
        let mut b = incremental.execute(&q).expect("incremental query");
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}

/// The paper's structural claims hold for the synthetic mainland database:
/// fan-outs 51/42 and a small directory fraction (paper: 2.84%).
#[test]
fn tree_shape_matches_the_paper() {
    let dataset = Dataset::generate(DatasetKind::Mainland, Scale::Small, 42);
    let mut tree = RTree::bulk_load(DiskManager::new(), dataset.items()).expect("bulk load");
    assert_eq!(tree.config().dir_max, 51);
    assert_eq!(tree.config().leaf_max, 42);
    let stats = tree.stats().expect("stats");
    assert!(
        stats.directory_fraction() < 0.06,
        "directory fraction {:.3} should be small (paper: 0.028)",
        stats.directory_fraction()
    );
    assert_eq!(stats.objects, dataset.items().len());
}

/// Updates through a buffered tree keep the tree valid and the buffer
/// coherent (reads after deletes never see stale entries).
#[test]
fn buffered_updates_stay_coherent() {
    let dataset = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 8);
    let items = dataset.items();
    let mut tree = RTree::bulk_load(DiskManager::new(), &items[..1200]).expect("bulk load");
    tree.set_buffer(BufferManager::with_policy(PolicyKind::Asb, 24));

    // Delete a third, insert fresh objects, interleaved with queries.
    for (i, victim) in items[..400].iter().enumerate() {
        assert!(
            tree.delete(victim.id, &victim.mbr).expect("delete"),
            "object {}",
            victim.id
        );
        let newcomer = items[1200 + i];
        tree.insert(newcomer).expect("insert");
        if i % 37 == 0 {
            let got = tree.window_query(victim.mbr).expect("query");
            assert!(!got.contains(&victim.id), "deleted object resurfaced");
            let got = tree.window_query(newcomer.mbr).expect("query");
            assert!(got.contains(&newcomer.id), "fresh object missing");
        }
    }
    tree.validate()
        .expect("tree stays valid under buffered updates");
    assert_eq!(tree.len(), 1200);
}

/// Clearing the buffer between query sets (the paper's protocol) really
/// resets the measurement: a repeated identical set costs the same.
#[test]
fn cleared_buffers_make_runs_repeatable() {
    let dataset = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 12);
    let queries = QuerySetSpec::uniform_windows(100).generate(&dataset, 150, 5);
    let mut tree = RTree::bulk_load(DiskManager::new(), dataset.items()).expect("bulk");
    tree.set_buffer(BufferManager::with_policy(PolicyKind::LruK { k: 2 }, 16));

    let run = |tree: &mut RTree<DiskManager>| {
        tree.buffer_mut().expect("buffer").clear();
        tree.store_mut().reset_stats();
        for q in &queries {
            tree.execute(q).expect("query");
        }
        tree.store().stats().reads
    };
    let first = run(&mut tree);
    let second = run(&mut tree);
    // LRU-K retains history across the clear (by design, it outlives
    // residency), so eviction decisions may differ marginally between
    // runs — but the paper's protocol (clear pages and counters) keeps
    // measurements comparable.
    let drift = (second as f64 - first as f64).abs() / first as f64;
    assert!(drift < 0.05, "runs drifted {drift:.3}: {first} vs {second}");

    // Without retained state (plain LRU), repetition is exact.
    tree.set_buffer(BufferManager::with_policy(PolicyKind::Lru, 16));
    let first = run(&mut tree);
    let second = run(&mut tree);
    assert_eq!(first, second, "LRU runs must repeat exactly");
}

/// A buffer as large as the tree converges to zero misses after warm-up.
#[test]
fn full_size_buffer_absorbs_everything() {
    let dataset = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 3);
    let mut tree = RTree::bulk_load(DiskManager::new(), dataset.items()).expect("bulk");
    let pages = tree.page_count();
    tree.set_buffer(BufferManager::with_policy(PolicyKind::Lru, pages));
    let queries = QuerySetSpec::uniform_windows(33).generate(&dataset, 300, 9);
    for q in &queries {
        tree.execute(q).expect("query");
    }
    tree.store_mut().reset_stats();
    for q in &queries {
        tree.execute(q).expect("query");
    }
    assert_eq!(
        tree.store().stats().reads,
        0,
        "warm full-size buffer must not miss"
    );
}

/// LRU-K's ghost history grows with evictions; ASB's does not — the
/// paper's memory argument for the adaptable spatial buffer.
#[test]
fn memory_overhead_matches_the_papers_argument() {
    let dataset = Dataset::generate(DatasetKind::Mainland, Scale::Tiny, 21);
    let queries = QuerySetSpec::uniform_windows(33).generate(&dataset, 400, 2);
    let mut retained = std::collections::HashMap::new();
    for policy in [PolicyKind::LruK { k: 2 }, PolicyKind::Asb, PolicyKind::Lru] {
        let mut tree = RTree::bulk_load(DiskManager::new(), dataset.items()).expect("bulk load");
        tree.set_buffer(BufferManager::with_policy(policy, 12));
        for q in &queries {
            tree.execute(q).expect("query");
        }
        let buf = tree.take_buffer().expect("buffer");
        retained.insert(policy.label(), buf.retained_history());
    }
    assert!(retained["LRU-2"] > 0, "LRU-2 must retain ghost history");
    assert_eq!(
        retained["ASB"], 0,
        "ASB must not retain history for evicted pages"
    );
    assert_eq!(retained["LRU"], 0);
}
