//! Golden-trace regression tests.
//!
//! `tests/golden/` holds one small recorded access trace per database plus
//! `expected.json`, the exact replay outcome of every `(trace, policy)`
//! pair. Replays are bit-for-bit deterministic, so any drift in the buffer
//! stack — hit accounting, eviction order, ASB adaptation, the sharded
//! pool's read path — shows up as an exact-equality failure here.
//!
//! To re-bless after an *intentional* behaviour change:
//!
//! ```text
//! ASB_BLESS_GOLDEN=1 cargo test --test golden_trace -- --test-threads 1
//! ```
//!
//! and commit the regenerated files with a note on why the numbers moved.

use asb::buffer::{PolicyKind, SpatialCriterion};
use asb::exp::Trace;
use asb::workload::{DatasetKind, PhasedWorkload, QuerySetSpec, Scale};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Buffer capacity used for every golden replay.
const CAPACITY: usize = 12;
/// Recording parameters: seed and query volume of the committed traces.
const SEED: u64 = 42;
const QUERIES: usize = 120;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn databases() -> [(&'static str, DatasetKind); 2] {
    [
        ("mainland", DatasetKind::Mainland),
        ("world", DatasetKind::World),
    ]
}

fn policies() -> [(&'static str, PolicyKind); 5] {
    [
        ("lru", PolicyKind::Lru),
        ("lru-2", PolicyKind::LruK { k: 2 }),
        (
            "slru",
            PolicyKind::Slru {
                candidate_fraction: 0.25,
                criterion: SpatialCriterion::Area,
            },
        ),
        ("asb", PolicyKind::Asb),
        ("arena", PolicyKind::Arena),
    ]
}

/// One expected replay outcome, flattened for stable JSON.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct GoldenRecord {
    trace: String,
    policy: String,
    logical_reads: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    physical_reads: u64,
    random_reads: u64,
    sequential_reads: u64,
    /// Final ASB candidate-set size (0 for non-ASB policies).
    candidate_final: u64,
}

fn record_of(
    trace_name: &str,
    policy_name: &str,
    trace: &Trace,
    policy: PolicyKind,
) -> GoldenRecord {
    let out = trace
        .replay_sequential(policy, CAPACITY)
        .expect("golden replay");
    GoldenRecord {
        trace: trace_name.to_string(),
        policy: policy_name.to_string(),
        logical_reads: out.stats.logical_reads,
        hits: out.stats.hits,
        misses: out.stats.misses,
        evictions: out.stats.evictions,
        physical_reads: out.physical_reads,
        random_reads: out.io.random_reads,
        sequential_reads: out.io.sequential_reads,
        candidate_final: out.candidate_trajectory.last().copied().unwrap_or(0) as u64,
    }
}

fn blessing() -> bool {
    std::env::var("ASB_BLESS_GOLDEN").is_ok_and(|v| v == "1")
}

fn load_trace(name: &str, db: DatasetKind) -> Trace {
    let path = golden_dir().join(format!("{name}.trace"));
    if blessing() {
        let t = Trace::record(
            db,
            Scale::Tiny,
            SEED,
            QuerySetSpec::uniform_windows(33),
            QUERIES,
        )
        .expect("record golden trace");
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        t.save(&path).expect("write golden trace");
        return t;
    }
    Trace::load(&path).unwrap_or_else(|e| {
        panic!("{e}\n(run with ASB_BLESS_GOLDEN=1 to regenerate the golden files)")
    })
}

/// The committed traces must be exactly what recording produces today:
/// recording is deterministic, so a re-record equals the checked-in file.
#[test]
fn recording_reproduces_the_committed_traces() {
    if blessing() {
        return; // load_trace rewrites the files in the other tests
    }
    for (name, db) in databases() {
        let committed = load_trace(name, db);
        let fresh = Trace::record(
            db,
            Scale::Tiny,
            SEED,
            QuerySetSpec::uniform_windows(33),
            QUERIES,
        )
        .expect("record");
        assert_eq!(fresh, committed, "{name}: recording drifted");
    }
}

/// Every `(trace, policy)` replay must match the committed expectations
/// exactly — and the one-shard sharded pool must match the sequential
/// buffer on the same trace.
#[test]
fn replays_match_expected_json() {
    let expected_path = golden_dir().join("expected.json");
    let mut actual = Vec::new();
    for (name, db) in databases() {
        let trace = load_trace(name, db);
        for (pname, policy) in policies() {
            let rec = record_of(name, pname, &trace, policy);

            // Sequential and one-shard sharded replays must agree exactly.
            let seq = trace.replay_sequential(policy, CAPACITY).expect("replay");
            let sharded = trace.replay_sharded(policy, CAPACITY, 1).expect("replay");
            assert_eq!(sharded.stats, seq.stats, "{name}/{pname}: shard drift");
            assert_eq!(
                sharded.physical_reads, seq.physical_reads,
                "{name}/{pname}: shard I/O drift"
            );

            actual.push(rec);
        }
    }
    if blessing() {
        let json = serde_json::to_string_pretty(&actual).expect("serialize");
        std::fs::write(&expected_path, json).expect("write expected.json");
        return;
    }
    let json = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\n(run with ASB_BLESS_GOLDEN=1 to regenerate)",
            expected_path.display()
        )
    });
    let expected: Vec<GoldenRecord> = serde_json::from_str(&json).expect("parse expected.json");
    assert_eq!(
        actual, expected,
        "replay outcomes drifted from tests/golden/expected.json"
    );
}

/// Queries per phase of the committed phase-change traces.
const PHASE_QUERIES_PER_PHASE: usize = 80;
/// Documented regret bound for the committed phase traces: the arena may
/// trail the best expert in hindsight by at most this many misses
/// (DESIGN.md §13). CI's arena-matrix job enforces the same bound.
const PHASE_REGRET_BOUND: i64 = 32;

fn load_phase_trace(name: &str, db: DatasetKind) -> Trace {
    let path = golden_dir().join(format!("phase_{name}.trace"));
    if blessing() {
        let w = PhasedWorkload::adversarial(PHASE_QUERIES_PER_PHASE);
        let t = Trace::record_phased(db, Scale::Tiny, SEED, &w).expect("record phase trace");
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        t.save(&path).expect("write phase trace");
        return t;
    }
    Trace::load(&path).unwrap_or_else(|e| {
        panic!("{e}\n(run with ASB_BLESS_GOLDEN=1 to regenerate the golden files)")
    })
}

/// The committed phase-change traces must be exactly what recording
/// produces today (phased recording is deterministic too).
#[test]
fn phase_recording_reproduces_the_committed_traces() {
    if blessing() {
        return; // load_phase_trace rewrites the files in the other tests
    }
    let w = PhasedWorkload::adversarial(PHASE_QUERIES_PER_PHASE);
    for (name, db) in databases() {
        let committed = load_phase_trace(name, db);
        let fresh = Trace::record_phased(db, Scale::Tiny, SEED, &w).expect("record");
        assert_eq!(fresh, committed, "phase_{name}: recording drifted");
    }
}

/// On the committed phase-change traces the expert arena must strictly
/// beat plain ASB (the point of mixing: no fixed policy survives every
/// regime), stay within the documented regret bound, and replay
/// bit-for-bit — identical stats *and* weight trajectory — sequentially
/// and through a one-shard pool.
#[test]
fn arena_beats_asb_on_the_committed_phase_traces() {
    for (name, db) in databases() {
        let trace = load_phase_trace(name, db);
        let asb = trace
            .replay_sequential(PolicyKind::Asb, CAPACITY)
            .expect("asb replay");
        let arena = trace
            .replay_sequential(PolicyKind::Arena, CAPACITY)
            .expect("arena replay");
        assert!(
            arena.stats.misses < asb.stats.misses,
            "phase_{name}: arena {} misses vs asb {}",
            arena.stats.misses,
            asb.stats.misses
        );
        let state = arena.arena.as_ref().expect("arena snapshot");
        assert!(
            state.regret() <= PHASE_REGRET_BOUND,
            "phase_{name}: regret {} exceeds bound {PHASE_REGRET_BOUND}",
            state.regret()
        );
        assert_eq!(arena.weight_trajectory.len(), trace.accesses.len());

        let again = trace
            .replay_sequential(PolicyKind::Arena, CAPACITY)
            .expect("arena replay");
        assert_eq!(arena, again, "phase_{name}: arena replay not reproducible");
        let sharded = trace
            .replay_sharded(PolicyKind::Arena, CAPACITY, 1)
            .expect("sharded replay");
        assert_eq!(sharded.stats, arena.stats, "phase_{name}: shard drift");
        assert_eq!(
            sharded.weight_trajectory, arena.weight_trajectory,
            "phase_{name}: weight trajectory drifted across pool shapes"
        );
    }
}

/// Seed-matrix variant behind CI's `arena-matrix` job: record fresh
/// phase-change traces at `ASB_ARENA_SEED` (default: the golden seed)
/// for both databases and check that the arena never loses to plain ASB
/// and honours the documented regret bound. Strictness (arena *beats*
/// ASB) is asserted only on the committed traces above; here the seed
/// varies, so the claim is the robustness one: never worse, bounded
/// regret.
#[test]
fn arena_matrix_holds_at_the_env_seed() {
    let seed = std::env::var("ASB_ARENA_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(SEED);
    let w = PhasedWorkload::adversarial(PHASE_QUERIES_PER_PHASE);
    for (name, db) in databases() {
        let trace = Trace::record_phased(db, Scale::Tiny, seed, &w).expect("record");
        let asb = trace
            .replay_sequential(PolicyKind::Asb, CAPACITY)
            .expect("asb replay");
        let arena = trace
            .replay_sequential(PolicyKind::Arena, CAPACITY)
            .expect("arena replay");
        assert!(
            arena.stats.misses <= asb.stats.misses,
            "{name} seed {seed}: arena {} misses vs asb {}",
            arena.stats.misses,
            asb.stats.misses
        );
        let state = arena.arena.as_ref().expect("arena snapshot");
        assert!(
            state.regret() <= PHASE_REGRET_BOUND,
            "{name} seed {seed}: regret {} exceeds bound {PHASE_REGRET_BOUND}",
            state.regret()
        );
    }
}

/// The golden traces replay identically across repeated runs (no hidden
/// global state in the buffer stack).
#[test]
fn replay_is_idempotent() {
    let (name, db) = databases()[0];
    let trace = load_trace(name, db);
    for (_, policy) in policies() {
        let a = trace.replay_sequential(policy, CAPACITY).expect("replay");
        let b = trace.replay_sequential(policy, CAPACITY).expect("replay");
        assert_eq!(a, b);
    }
}
