//! Crash-recovery suite: the WAL-attached write-back buffer under
//! simulated process kills.
//!
//! The umbrella test sweeps **every** durable I/O point of a golden-trace
//! workload — in both clean-kill and torn-write variants — and asserts
//! that recovery restores exactly the committed prefix of the crash-free
//! run (an update is committed once its WAL image append survived). The
//! crash schedule is a pure function of the workload seed, so every
//! failure is reproducible; CI sweeps `ASB_CRASH_SEED` over a fixed
//! matrix. Locally the sweep covers a 250-access prefix of each trace;
//! set `ASB_CRASH_FULL=1` for the full trace. On divergence the trace
//! and surviving WAL bytes land in `target/crash-artifacts/` so the run
//! can be replayed offline (`trace crash <file> --seed ...`).
//!
//! The hand-picked scenarios below pin the two repair behaviours the
//! sweep relies on: a torn page image in the store is rewritten from the
//! WAL, and a torn record at the WAL tail is detected by its checksum
//! and discarded rather than replayed.

use asb::buffer::{BufferManager, PolicyKind};
use asb::exp::{crash_sweep, CrashConfig, Trace};
use asb::geom::{Rect, SpatialStats};
use asb::storage::{
    AccessContext, CrashClock, CrashMode, CrashPlan, CrashableStore, DiskManager, Page, PageId,
    PageMeta, PageStore, QueryId, StorageError, Wal, WalConfig,
};
use bytes::Bytes;
use std::path::{Path, PathBuf};

/// Seed of the crash-point workload, overridable for the CI matrix.
fn crash_seed() -> u64 {
    std::env::var("ASB_CRASH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Access-prefix limit: short locally, the whole trace under
/// `ASB_CRASH_FULL=1` (CI's release-mode matrix).
fn access_limit() -> Option<usize> {
    if std::env::var("ASB_CRASH_FULL").is_ok() {
        None
    } else {
        Some(250)
    }
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn artifact_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("target/crash-artifacts")
}

fn sweep_database(name: &str) {
    let trace = Trace::load(golden_dir().join(format!("{name}.trace"))).expect("load trace");
    let config = CrashConfig {
        policy: PolicyKind::Asb,
        capacity: 12,
        update_every: 4,
        checkpoint_interval: 16,
        seed: crash_seed(),
        max_accesses: access_limit(),
        artifact_dir: Some(artifact_dir()),
        ..CrashConfig::default()
    };
    let report = crash_sweep(&trace, &config).expect("golden run");
    assert!(report.updates > 0, "{name}: workload must issue updates");
    assert!(
        report.checkpoints > 0,
        "{name}: auto-checkpointing must fire"
    );
    assert!(
        report.torn_tails_dropped > 0,
        "{name}: torn WAL tails must be exercised and discarded"
    );
    assert!(report.images_redone > 0, "{name}: recovery must redo work");
    assert_eq!(
        report.sweeps_run,
        report.crash_points * 2,
        "{name}: every crash point runs in clean and torn variants"
    );
    assert!(
        report.holds(),
        "{name} seed={}: {} of {} crash points diverged; first: {}",
        config.seed,
        report.divergences.len(),
        report.sweeps_run,
        report.divergences[0]
    );
}

/// Every kill point of the mainland golden trace recovers to the
/// committed prefix.
#[test]
fn mainland_crash_sweep_recovers_the_committed_prefix() {
    sweep_database("mainland");
}

/// Every kill point of the world golden trace recovers to the committed
/// prefix.
#[test]
fn world_crash_sweep_recovers_the_committed_prefix() {
    sweep_database("world");
}

fn build_disk(pages: u64) -> (DiskManager, Vec<PageId>) {
    let mut disk = DiskManager::new();
    let ids = (0..pages)
        .map(|i| {
            let r = Rect::new(0.0, 0.0, (i % 5) as f64 + 0.5, (i % 3) as f64 + 0.5);
            disk.allocate(
                PageMeta::data(SpatialStats::from_rects(&[r])),
                Bytes::from(vec![i as u8; 16]),
            )
            .expect("allocate")
        })
        .collect();
    (disk, ids)
}

fn meta_of(store: &CrashableStore<DiskManager>, id: PageId) -> PageMeta {
    store.inner().peek(id).expect("page exists").meta
}

/// A kill mid-store-write leaves a torn page (checksum mismatch); the
/// WAL image logged before the write-back repairs it on recovery.
#[test]
fn torn_write_back_is_repaired_from_the_wal() {
    let (disk, ids) = build_disk(4);
    // Event 0 is the WAL image append, event 1 the store write: kill
    // during the write so the log survives but the page is torn.
    let clock = CrashClock::with_plan(CrashPlan {
        kill_at: 1,
        mode: CrashMode::Torn,
    });
    let mut store = CrashableStore::new(disk, clock.clone());
    let wal = Wal::shared_with_clock(WalConfig::default(), clock);
    let mut buf = BufferManager::with_policy(PolicyKind::Lru, 2);
    buf.attach_wal(wal.clone());

    let page =
        Page::new(ids[0], meta_of(&store, ids[0]), Bytes::from(vec![0xAB; 16])).expect("page");
    let err = buf
        .write_through(&mut store, page)
        .expect_err("the kill must surface");
    assert!(matches!(err, StorageError::Crashed), "got: {err}");
    let torn = store.inner().peek(ids[0]).expect("page exists");
    assert!(
        !torn.verify_checksum(),
        "the interrupted write must leave a torn page"
    );

    let mut disk = store.into_inner();
    let report = wal.lock().recover_into(&mut disk).expect("recovery");
    assert_eq!(report.images_redone, 1);
    let healed = disk.peek(ids[0]).expect("page exists");
    assert!(healed.verify_checksum(), "recovery restores the image");
    assert_eq!(healed.payload.as_ref(), &[0xAB; 16][..]);

    // Idempotence: a second recovery pass redoes the same images onto an
    // already-consistent store and changes nothing.
    let again = wal.lock().recover_into(&mut disk).expect("second recovery");
    assert_eq!(again.images_redone, report.images_redone);
    assert_eq!(
        disk.peek(ids[0]).expect("page").payload.as_ref(),
        &[0xAB; 16][..]
    );
}

/// A kill mid-WAL-append leaves a torn record at the tail; recovery must
/// detect it by checksum and discard it — the half-written update was
/// never committed, so nothing may be replayed from it.
#[test]
fn torn_wal_tail_is_discarded_not_replayed() {
    let (disk, ids) = build_disk(4);
    // First update via write-through claims events 0 (WAL append) and 1
    // (store write); the second update's WAL append is event 2 — kill
    // inside it, producing a torn tail record.
    let clock = CrashClock::with_plan(CrashPlan {
        kill_at: 2,
        mode: CrashMode::Torn,
    });
    let mut store = CrashableStore::new(disk, clock.clone());
    let wal = Wal::shared_with_clock(WalConfig::default(), clock);
    let mut buf = BufferManager::with_policy(PolicyKind::Lru, 2);
    buf.attach_wal(wal.clone());

    let meta = meta_of(&store, ids[0]);
    let committed = Page::new(ids[0], meta, Bytes::from(vec![1u8; 16])).expect("page");
    buf.write_through(&mut store, committed).expect("write");

    let doomed = Page::new(ids[0], meta, Bytes::from(vec![2u8; 16])).expect("page");
    let err = buf
        .write_buffered(&mut store, doomed)
        .expect_err("the kill must surface");
    assert!(matches!(err, StorageError::Crashed), "got: {err}");

    let mut disk = store.into_inner();
    let report = wal.lock().recover_into(&mut disk).expect("recovery");
    assert!(
        report.torn_tail_dropped,
        "the half-written record must be detected as torn"
    );
    assert_eq!(report.images_redone, 1, "only the committed image replays");
    let page = disk.peek(ids[0]).expect("page");
    assert!(page.verify_checksum(), "consistent after recovery");
    assert_eq!(
        page.payload.as_ref(),
        &[1u8; 16][..],
        "the uncommitted update must NOT reappear"
    );
}

/// A clean kill before anything durable happened recovers to the initial
/// state: the empty-log path of recovery must be a no-op, not an error.
#[test]
fn recovery_of_an_empty_log_is_a_no_op() {
    let (mut disk, ids) = build_disk(2);
    let wal = Wal::shared(WalConfig::default());
    let report = wal.lock().recover_into(&mut disk).expect("recovery");
    assert_eq!(report.records_scanned, 0);
    assert_eq!(report.images_redone, 0);
    for &id in &ids {
        assert!(disk.peek(id).expect("page").verify_checksum(), "intact");
    }
}

/// After the kill fires, every further durable operation fails with
/// `Crashed` — the simulated process stays dead until recovery runs on a
/// fresh stack.
#[test]
fn a_dead_process_rejects_all_io() {
    let (disk, ids) = build_disk(2);
    let clock = CrashClock::with_plan(CrashPlan {
        kill_at: 0,
        mode: CrashMode::Clean,
    });
    let mut store = CrashableStore::new(disk, clock.clone());
    let meta = store.inner().peek(ids[0]).expect("page").meta;
    let page = Page::new(ids[0], meta, Bytes::from(vec![9u8; 16])).expect("page");
    assert!(matches!(
        store.write(page.clone()),
        Err(StorageError::Crashed)
    ));
    assert!(clock.is_dead());
    assert!(matches!(store.write(page), Err(StorageError::Crashed)));
    assert!(matches!(
        store.read(ids[0], AccessContext::query(QueryId::new(0))),
        Err(StorageError::Crashed)
    ));
}
