//! Sanity checks of the figure harness at small scale: the qualitative
//! claims the paper makes must already hold for the synthetic workloads.
//!
//! Shape-level (not value-level) assertions only — absolute gains depend on
//! scale, but who-wins-where is the reproduction target.

use asb::buffer::{PolicyKind, SpatialCriterion};
use asb::exp::Lab;
use asb::workload::{DatasetKind, QueryKind, QuerySetSpec, Scale};

fn small_lab() -> Lab {
    Lab::new(Scale::Small, 42)
}

/// The headline claim: ASB never loses to LRU ("the I/O cost increases for
/// none of the investigated query distributions").
#[test]
fn asb_never_loses_to_lru() {
    let mut lab = small_lab();
    let sets = [
        QuerySetSpec::uniform_points(),
        QuerySetSpec::uniform_windows(33),
        QuerySetSpec::identical_windows(),
        QuerySetSpec::similar(QueryKind::Window { ex: 33 }),
        QuerySetSpec::intensified(QueryKind::Point),
        QuerySetSpec::intensified(QueryKind::Window { ex: 33 }),
        QuerySetSpec::independent(QueryKind::Point),
    ];
    for db in [DatasetKind::Mainland, DatasetKind::World] {
        for spec in sets {
            let gain = lab.gain(db, PolicyKind::Asb, 0.047, spec).unwrap();
            assert!(
                gain > -2.0,
                "ASB lost to LRU on {db:?}/{} ({gain:.1}%)",
                spec.name()
            );
        }
    }
}

/// Figure 7's claim: the spatial policy A is the clear winner for uniform
/// query distributions.
#[test]
fn spatial_a_wins_on_uniform() {
    let mut lab = small_lab();
    let a = PolicyKind::Spatial(SpatialCriterion::Area);
    for spec in [
        QuerySetSpec::uniform_points(),
        QuerySetSpec::uniform_windows(100),
    ] {
        let gain = lab.gain(DatasetKind::Mainland, a, 0.047, spec).unwrap();
        assert!(
            gain > 5.0,
            "A should win on {} (got {gain:.1}%)",
            spec.name()
        );
        let lru2 = lab
            .gain(
                DatasetKind::Mainland,
                PolicyKind::LruK { k: 2 },
                0.047,
                spec,
            )
            .unwrap();
        assert!(
            gain > lru2,
            "A ({gain:.1}%) should beat LRU-2 ({lru2:.1}%) on uniform"
        );
    }
}

/// Figure 9's claim: A is inferior under the intensified distribution
/// ("areas of intensified interest are not characterized by large page
/// areas") while LRU-2 keeps a solid gain.
#[test]
fn spatial_a_collapses_on_intensified() {
    let mut lab = small_lab();
    let spec = QuerySetSpec::intensified(QueryKind::Point);
    let a = lab
        .gain(
            DatasetKind::Mainland,
            PolicyKind::Spatial(SpatialCriterion::Area),
            0.047,
            spec,
        )
        .unwrap();
    let lru2 = lab
        .gain(
            DatasetKind::Mainland,
            PolicyKind::LruK { k: 2 },
            0.047,
            spec,
        )
        .unwrap();
    assert!(a < 0.0, "A should lose on INT-P (got {a:.1}%)");
    assert!(lru2 > 5.0, "LRU-2 should gain on INT-P (got {lru2:.1}%)");
}

/// Figure 12's claim: the static combination pulls A toward LRU — losses
/// shrink, and SLRU 25% is closer to LRU than SLRU 50%.
#[test]
fn slru_moderates_spatial_extremes() {
    let mut lab = small_lab();
    let crit = SpatialCriterion::Area;
    let a = PolicyKind::Spatial(crit);
    let slru25 = PolicyKind::Slru {
        candidate_fraction: 0.25,
        criterion: crit,
    };
    let slru50 = PolicyKind::Slru {
        candidate_fraction: 0.5,
        criterion: crit,
    };

    // Where A loses (intensified), both SLRUs must do better than A.
    let spec = QuerySetSpec::intensified(QueryKind::Point);
    let ga = lab.gain(DatasetKind::Mainland, a, 0.047, spec).unwrap();
    let g25 = lab
        .gain(DatasetKind::Mainland, slru25, 0.047, spec)
        .unwrap();
    let g50 = lab
        .gain(DatasetKind::Mainland, slru50, 0.047, spec)
        .unwrap();
    assert!(
        g25 > ga && g50 > ga,
        "SLRU must soften A's loss: A={ga:.1} 25%={g25:.1} 50%={g50:.1}"
    );
    // The paper: "In the most cases, the performance loss has become a
    // (slight) performance gain. These observations especially hold for
    // ... 25%". Pointwise ordering between 25% and 50% is not guaranteed,
    // but the stronger LRU influence must not lose to LRU outright.
    assert!(
        g25 > -2.0,
        "SLRU 25% must stay near or above LRU ({g25:.1}%)"
    );

    // Where A wins big (uniform), SLRU keeps part of the gain.
    let spec = QuerySetSpec::uniform_windows(100);
    let ga = lab.gain(DatasetKind::Mainland, a, 0.047, spec).unwrap();
    let g25 = lab
        .gain(DatasetKind::Mainland, slru25, 0.047, spec)
        .unwrap();
    assert!(
        g25 > 0.0 && g25 < ga + 1.0,
        "SLRU shifts A toward LRU: A={ga:.1} 25%={g25:.1}"
    );
}

/// Figure 5's claim: K barely matters — LRU-2, LRU-3 and LRU-5 perform
/// alike ("no significant difference").
#[test]
fn lru_k_is_insensitive_to_k() {
    let mut lab = small_lab();
    let spec = QuerySetSpec::identical_points();
    let g2 = lab
        .gain(
            DatasetKind::Mainland,
            PolicyKind::LruK { k: 2 },
            0.047,
            spec,
        )
        .unwrap();
    let g3 = lab
        .gain(
            DatasetKind::Mainland,
            PolicyKind::LruK { k: 3 },
            0.047,
            spec,
        )
        .unwrap();
    let g5 = lab
        .gain(
            DatasetKind::Mainland,
            PolicyKind::LruK { k: 5 },
            0.047,
            spec,
        )
        .unwrap();
    assert!((g2 - g3).abs() < 6.0, "LRU-2 {g2:.1} vs LRU-3 {g3:.1}");
    assert!((g2 - g5).abs() < 6.0, "LRU-2 {g2:.1} vs LRU-5 {g5:.1}");
}

/// Figure 14's claim: the candidate set shrinks in the intensified phase
/// and grows in the uniform phase.
#[test]
fn asb_retunes_across_phases() {
    let mut lab = small_lab();
    let specs = [
        QuerySetSpec::intensified(QueryKind::Window { ex: 33 }),
        QuerySetSpec::uniform_windows(33),
    ];
    let trace = lab
        .candidate_trace(DatasetKind::Mainland, 0.047, &specs)
        .unwrap();
    let bounds = lab.phase_boundaries(DatasetKind::Mainland, &specs).unwrap();
    let phase_avg = |range: std::ops::Range<usize>| {
        let slice = &trace[range];
        slice.iter().map(|&(_, s)| s as f64).sum::<f64>() / slice.len() as f64
    };
    // Compare the settled halves of each phase.
    let int_avg = phase_avg(bounds[0] / 2..bounds[0]);
    let uni_avg = phase_avg((bounds[0] + bounds[1]) / 2..bounds[1]);
    assert!(
        uni_avg > int_avg,
        "candidate set should grow from INT ({int_avg:.1}) to U ({uni_avg:.1})"
    );
}
