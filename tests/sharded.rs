//! Multi-threaded integration tests for the lock-striped buffer pool,
//! exercised through the umbrella crate the way applications see it.
//!
//! Two families:
//!
//! * a stress test over **every** replacement policy — invariants that must
//!   hold for any interleaving (bounded residency, consistent accounting,
//!   no lost writes);
//! * a determinism test — with one shard and one thread the pool reproduces
//!   the sequential [`BufferManager`]'s counts bit for bit.

use asb::buffer::{BufferManager, PolicyKind, ShardedBuffer, SpatialCriterion};
use asb::geom::{Rect, SpatialStats};
use asb::storage::{AccessContext, DiskManager, Page, PageId, PageMeta, PageStore, QueryId};
use bytes::Bytes;

const PAGES: u64 = 200;
const CAPACITY: usize = 32;
const SHARDS: usize = 4;
const THREADS: usize = 4;

/// Every policy the buffer core offers, in one place so a new variant
/// fails this test's exhaustiveness rather than silently going untested.
fn all_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Clock,
        PolicyKind::Random { seed: 7 },
        PolicyKind::LruT,
        PolicyKind::LruP,
        PolicyKind::TwoQ,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Spatial(SpatialCriterion::Area),
        PolicyKind::Slru {
            candidate_fraction: 0.25,
            criterion: SpatialCriterion::Area,
        },
        PolicyKind::Asb,
    ]
}

fn build_disk() -> (DiskManager, Vec<PageId>) {
    let mut disk = DiskManager::new();
    let ids = (0..PAGES)
        .map(|i| {
            let side = 1.0 + (i % 13) as f64;
            let meta = PageMeta::data(SpatialStats::from_rects(&[Rect::new(0.0, 0.0, side, side)]));
            disk.allocate(meta, Bytes::from(vec![i as u8]))
                .expect("allocate")
        })
        .collect();
    disk.reset_stats();
    (disk, ids)
}

/// Runs a mixed read/write load from several threads and checks the
/// invariants that must survive any interleaving.
#[test]
fn stress_every_policy_preserves_invariants() {
    for policy in all_policies() {
        let (disk, ids) = build_disk();
        let pool = ShardedBuffer::new(disk, policy, CAPACITY, SHARDS);

        std::thread::scope(|s| {
            for t in 0..THREADS as u64 {
                let pool = pool.clone();
                let ids = &ids;
                s.spawn(move || {
                    for i in 0..500u64 {
                        let slot = ((t * 31 + i * 17) % PAGES) as usize;
                        let ctx = AccessContext::query(QueryId::new((t << 32) | (i / 8)));
                        let page = pool.fetch(ids[slot], ctx).expect("read");
                        assert_eq!(page.id, ids[slot]);
                        // Each thread rewrites only its own residue class,
                        // so the final payloads are schedule-independent.
                        if slot as u64 % THREADS as u64 == t && i % 5 == 0 {
                            let page = Page::new(
                                page.id,
                                page.meta,
                                Bytes::from(vec![slot as u8, t as u8]),
                            )
                            .expect("page");
                            pool.write(page).expect("write");
                        }
                    }
                });
            }
        });

        let stats = pool.stats();
        assert!(
            pool.resident() <= CAPACITY,
            "{policy:?}: {} resident pages exceed capacity {CAPACITY}",
            pool.resident()
        );
        assert_eq!(
            stats.hits + stats.misses,
            stats.logical_reads,
            "{policy:?}: accounting must balance"
        );
        assert_eq!(stats.logical_reads, (THREADS * 500) as u64, "{policy:?}");
        assert!(
            stats.evictions > 0,
            "{policy:?}: the trace must overflow the buffer"
        );

        // No lost writes: every page some thread rewrote must read back
        // with that thread's payload, from the pool and from the store.
        let Ok(mut disk) = pool.try_into_store() else {
            panic!("sole handle with no guards must take the store back");
        };
        for (slot, id) in ids.iter().enumerate() {
            let owner = (slot % THREADS) as u8;
            let page = disk
                .read(*id, AccessContext::default())
                .expect("page survives");
            if page.payload.len() == 2 {
                assert_eq!(
                    page.payload.as_ref(),
                    &[slot as u8, owner],
                    "lost write on {id:?}"
                );
            } else {
                assert_eq!(
                    page.payload.as_ref(),
                    &[slot as u8],
                    "corrupted page {id:?}"
                );
            }
        }
    }
}

/// With one shard, the pool is the sequential buffer manager behind a
/// mutex: a single-threaded trace must produce identical statistics and
/// identical physical I/O.
#[test]
fn single_shard_replays_identically_to_sequential_buffer() {
    for policy in all_policies() {
        // Sequential reference: BufferManager::fetch over a disk.
        let (mut disk, ids) = build_disk();
        let mut seq = BufferManager::with_policy(policy, CAPACITY);
        let trace: Vec<(usize, u64)> = (0..3_000u64)
            .map(|i| (((i * 29 + i / 64) % PAGES) as usize, i / 8))
            .collect();
        for &(slot, q) in &trace {
            seq.fetch(&mut disk, ids[slot], AccessContext::query(QueryId::new(q)))
                .expect("read");
        }
        let seq_io = disk.stats();

        // Same trace through a one-shard pool.
        let (disk, ids) = build_disk();
        let pool = ShardedBuffer::new(disk, policy, CAPACITY, 1);
        for &(slot, q) in &trace {
            pool.fetch(ids[slot], AccessContext::query(QueryId::new(q)))
                .expect("read");
        }

        assert_eq!(
            pool.stats(),
            seq.stats(),
            "{policy:?}: buffer statistics must match"
        );
        assert_eq!(
            pool.io_stats().reads,
            seq_io.reads,
            "{policy:?}: physical reads must match"
        );
    }
}
