//! Fault-injection suite: the buffer stack under a misbehaving store.
//!
//! The fault schedule is a pure function of the `FaultyStore` seed, so
//! every failure here is reproducible by re-running with the same seed.
//! CI sweeps `ASB_FAULT_SEED` over a fixed matrix; locally the suite runs
//! with seed 1 unless the variable is set. On failure, the chaos-matrix
//! test writes the offending trace to `target/fault-artifacts/` so the
//! run can be replayed offline (`trace replay <file> --fault-rate ...`).

use asb::buffer::{BufferManager, PolicyKind, ShardedBuffer, SpatialCriterion};
use asb::exp::Trace;
use asb::geom::{Rect, SpatialStats};
use asb::storage::{
    AccessContext, DiskManager, FaultConfig, FaultyStore, PageId, PageMeta, PageStore, QueryId,
    RetryPolicy, StorageError,
};
use asb::workload::{DatasetKind, QuerySetSpec, Scale};
use bytes::Bytes;
use std::path::Path;

/// Seed of the fault schedule, overridable for the CI matrix.
fn fault_seed() -> u64 {
    std::env::var("ASB_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn build_disk(pages: u64) -> (DiskManager, Vec<PageId>) {
    let mut disk = DiskManager::new();
    let ids = (0..pages)
        .map(|i| {
            let r = Rect::new(0.0, 0.0, (i % 7) as f64 + 0.5, (i % 3) as f64 + 0.5);
            disk.allocate(
                PageMeta::data(SpatialStats::from_rects(&[r])),
                Bytes::from(vec![i as u8; 16]),
            )
            .expect("allocate")
        })
        .collect();
    (disk, ids)
}

fn ctx(q: u64) -> AccessContext {
    AccessContext::query(QueryId::new(q))
}

/// Transient read faults are absorbed by the retry loop: the caller sees
/// correct pages, only the `retries` counter betrays the turbulence.
#[test]
fn transient_faults_are_transparent_to_readers() {
    let (disk, ids) = build_disk(16);
    let mut store = FaultyStore::new(disk, FaultConfig::transient(fault_seed(), 0.3));
    let mut buf = BufferManager::with_policy(PolicyKind::Lru, 4);
    buf.set_retry_policy(RetryPolicy {
        max_attempts: 12,
        base_backoff_ms: 0.1,
        backoff_multiplier: 2.0,
    });
    for (i, &id) in ids.iter().enumerate().cycle().take(200) {
        let page = buf.fetch(&mut store, id, ctx(i as u64)).expect("read");
        assert_eq!(page.id, id);
        assert!(page.verify_checksum());
    }
    let stats = buf.stats();
    assert_eq!(stats.logical_reads, 200);
    assert!(
        stats.retries > 0,
        "a 30% fault rate over 200 reads must trigger retries"
    );
    assert!(store.fault_stats().read_faults > 0);
}

/// Corrupted payloads are detected by checksum, counted, and refetched —
/// the caller never observes damaged bytes.
#[test]
fn corruption_is_detected_and_refetched() {
    let (disk, ids) = build_disk(16);
    let mut store = FaultyStore::new(disk, FaultConfig::corrupting(fault_seed(), 0.3));
    let mut buf = BufferManager::with_policy(PolicyKind::Lru, 4);
    buf.set_retry_policy(RetryPolicy {
        max_attempts: 12,
        ..RetryPolicy::default()
    });
    for (i, &id) in ids.iter().enumerate().cycle().take(200) {
        let page = buf.fetch(&mut store, id, ctx(i as u64)).expect("read");
        assert!(
            page.verify_checksum(),
            "corrupted payload served to the caller"
        );
        assert_eq!(
            page.payload,
            store.inner().peek(id).expect("peek").payload,
            "served payload differs from the disk image"
        );
    }
    assert!(store.fault_stats().corruptions > 0, "rate 0.3 must corrupt");
    assert!(buf.stats().corruptions > 0, "buffer must count detections");
}

/// A frame poisoned *in the pool* (bit rot in memory) is evicted and
/// refetched on the next access instead of being served.
#[test]
fn poisoned_resident_frame_is_refetched_not_served() {
    let (mut disk, ids) = build_disk(8);
    let mut buf = BufferManager::with_policy(PolicyKind::Lru, 4);
    let clean = buf.fetch(&mut disk, ids[0], ctx(0)).expect("read");
    assert!(buf.poison_frame(ids[0]), "frame is resident");
    let healed = buf.fetch(&mut disk, ids[0], ctx(1)).expect("read");
    assert!(healed.verify_checksum());
    assert_eq!(healed.payload, clean.payload);
    let stats = buf.stats();
    assert_eq!(stats.corruptions, 1);
    assert_eq!(stats.misses, 2, "the poisoned hit degrades to a miss");
}

/// When the store never recovers, the retry loop gives up with a typed
/// error that names the page and the spent budget — not a panic.
#[test]
fn hopeless_faults_surface_a_typed_give_up() {
    let (disk, ids) = build_disk(4);
    let mut store = FaultyStore::new(disk, FaultConfig::transient(fault_seed(), 1.0));
    let mut buf = BufferManager::with_policy(PolicyKind::Lru, 2);
    buf.set_retry_policy(RetryPolicy {
        max_attempts: 3,
        base_backoff_ms: 0.5,
        backoff_multiplier: 2.0,
    });
    let err = buf.fetch(&mut store, ids[0], ctx(0)).unwrap_err();
    match err {
        StorageError::RetriesExhausted { id, attempts, last } => {
            assert_eq!(id, ids[0]);
            assert_eq!(attempts, 3);
            assert!(last.is_transient());
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert_eq!(
        buf.stats().retries,
        2,
        "two re-attempts after the first try"
    );
}

/// Permanently failed pages report `DeviceFailed` immediately — no retry
/// budget is wasted on a dead device.
#[test]
fn permanent_failures_are_not_retried() {
    let (disk, ids) = build_disk(4);
    let mut store = FaultyStore::new(disk, FaultConfig::reliable());
    store.mark_permanent(ids[1]);
    let mut buf = BufferManager::with_policy(PolicyKind::Lru, 2);
    let err = buf.fetch(&mut store, ids[1], ctx(0)).unwrap_err();
    assert_eq!(err, StorageError::DeviceFailed(ids[1]));
    assert_eq!(buf.stats().retries, 0);
    // Healing restores the page.
    store.heal(ids[1]);
    assert!(buf.fetch(&mut store, ids[1], ctx(1)).is_ok());
}

/// Satellite regression: a dirty victim whose write-back fails must stay
/// resident (and dirty), and the eviction must not be recorded as
/// completed. After the store recovers, the eviction succeeds.
#[test]
fn failed_writeback_keeps_victim_resident_and_uncounted() {
    let (disk, ids) = build_disk(8);
    let mut store = FaultyStore::new(disk, FaultConfig::reliable());
    let mut buf = BufferManager::with_policy(PolicyKind::Lru, 2);
    buf.set_retry_policy(RetryPolicy::none());

    // Make page A resident and dirty via a buffered write.
    let dirty = asb::storage::Page::new(
        ids[0],
        PageMeta::data(SpatialStats::EMPTY),
        Bytes::from_static(b"dirty-a"),
    )
    .expect("page");
    buf.write_buffered(&mut store, dirty)
        .expect("buffered write");
    buf.fetch(&mut store, ids[1], ctx(0)).expect("fill");
    assert_eq!(buf.dirty_count(), 1);

    // Now every write fails: evicting A (the LRU victim) cannot complete.
    store.set_config(FaultConfig {
        write_transient: 1.0,
        ..FaultConfig::transient(fault_seed(), 0.0)
    });
    let err = buf.fetch(&mut store, ids[2], ctx(1)).unwrap_err();
    assert!(
        matches!(
            &err,
            StorageError::RetriesExhausted { id, last, .. }
                if *id == ids[0] && matches!(**last, StorageError::TransientWrite(w) if w == ids[0])
        ),
        "got {err:?}"
    );
    let stats = buf.stats();
    assert_eq!(stats.failed_evictions, 1);
    assert_eq!(stats.evictions, 0, "no completed eviction may be recorded");
    assert!(buf.contains(ids[0]), "victim must stay resident");
    assert_eq!(buf.dirty_count(), 1, "victim must stay dirty");

    // Store recovers: the same access now evicts cleanly and serves C.
    store.set_config(FaultConfig::reliable());
    let page = buf.fetch(&mut store, ids[2], ctx(2)).expect("read");
    assert_eq!(page.id, ids[2]);
    let stats = buf.stats();
    assert_eq!(stats.failed_evictions, 1);
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.writebacks, 1);
    assert_eq!(
        store.inner().peek(ids[0]).expect("peek").payload,
        Bytes::from_static(b"dirty-a"),
        "the recovered write-back must have landed on disk"
    );
}

/// The fault schedule is a pure function of (seed, op index): two stores
/// with the same seed inject identically, different seeds differ.
#[test]
fn fault_schedules_are_seed_deterministic() {
    let seed = fault_seed();
    let run = |seed: u64| {
        let (disk, ids) = build_disk(8);
        let mut store = FaultyStore::new(disk, FaultConfig::chaos(seed, 0.25));
        let mut buf = BufferManager::with_policy(PolicyKind::Lru, 4);
        buf.set_retry_policy(RetryPolicy {
            max_attempts: 16,
            ..RetryPolicy::default()
        });
        for (i, &id) in ids.iter().enumerate().cycle().take(120) {
            let _ = buf.fetch(&mut store, id, ctx(i as u64));
        }
        (store.fault_stats(), buf.stats())
    };
    assert_eq!(run(seed), run(seed));
    assert_ne!(
        run(seed).0,
        run(seed ^ 0xdead_beef).0,
        "different seeds must produce different schedules"
    );
}

/// End-to-end: a recorded workload replayed under chaos faults returns
/// only correct payloads, with zero panics, across all policies.
#[test]
fn replayed_workload_survives_chaos() {
    let trace = Trace::record(
        DatasetKind::Mainland,
        Scale::Tiny,
        7,
        QuerySetSpec::uniform_windows(33),
        80,
    )
    .expect("record");
    for policy in [
        PolicyKind::Lru,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Slru {
            candidate_fraction: 0.25,
            criterion: SpatialCriterion::Area,
        },
        PolicyKind::Asb,
    ] {
        let out = trace
            .replay_with_faults(
                policy,
                8,
                FaultConfig::chaos(fault_seed(), 0.1),
                RetryPolicy {
                    max_attempts: 10,
                    ..RetryPolicy::default()
                },
            )
            .expect("fault replay");
        assert_eq!(out.wrong_payloads, 0, "{policy:?}: corruption served");
        assert_eq!(
            out.stats.logical_reads,
            trace.accesses.len() as u64,
            "{policy:?}: accesses lost"
        );
    }
}

/// The sharded pool under multi-threaded chaos: every served page is
/// intact, counters stay consistent, zero panics. On failure the workload
/// trace is written to `target/fault-artifacts/` for offline replay.
#[test]
fn sharded_pool_survives_multithreaded_chaos() {
    let seed = fault_seed();
    let trace = Trace::record(
        DatasetKind::Mainland,
        Scale::Tiny,
        7,
        QuerySetSpec::uniform_windows(33),
        80,
    )
    .expect("record");
    let disk = trace.build_disk().expect("disk");
    let store = FaultyStore::new(disk, FaultConfig::chaos(seed, 0.08));
    let pool = ShardedBuffer::new(store, PolicyKind::Asb, 16, 4);
    pool.set_retry_policy(RetryPolicy {
        max_attempts: 16,
        base_backoff_ms: 0.1,
        backoff_multiplier: 2.0,
    });

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4usize)
                .map(|t| {
                    let pool = pool.clone();
                    let accesses = &trace.accesses;
                    s.spawn(move || {
                        let mut give_ups = 0u64;
                        for &(p, q) in accesses.iter().skip(t).step_by(4) {
                            let id = PageId::new(p);
                            match pool.fetch(id, ctx(q | ((t as u64) << 48))) {
                                Ok(page) => {
                                    assert!(page.verify_checksum(), "corrupt page served");
                                    assert_eq!(page.id, id);
                                }
                                Err(
                                    StorageError::RetriesExhausted { .. }
                                    | StorageError::DeviceFailed(_),
                                ) => give_ups += 1,
                                Err(other) => panic!("unexpected error: {other:?}"),
                            }
                        }
                        give_ups
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread"))
                .sum::<u64>()
        })
    }));

    match result {
        Ok(give_ups) => {
            let stats = pool.stats();
            assert_eq!(
                stats.logical_reads,
                trace.accesses.len() as u64,
                "every access must be accounted"
            );
            assert_eq!(stats.hits + stats.misses, stats.logical_reads);
            // Give-ups are tolerable under chaos; silent loss is not.
            assert!(give_ups <= trace.accesses.len() as u64 / 10);
        }
        Err(payload) => {
            // Preserve the reproducer before failing the test.
            let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("target/fault-artifacts");
            let _ = std::fs::create_dir_all(&dir);
            let path = dir.join(format!("chaos-seed-{seed}.trace"));
            let _ = trace.save(&path);
            eprintln!(
                "sharded chaos run panicked; trace saved to {} \
                 (replay: trace replay {} --fault-seed {seed} --fault-rate 0.08)",
                path.display(),
                path.display()
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// The batched fetch contract retries transient faults *per page*: with a
/// generous policy every slot of every batch comes back `Ok`, and only the
/// pool's `retries` counter records the turbulence. No batch is poisoned
/// by a sibling page's transient fault.
#[test]
fn batched_fetch_retries_transients_per_page() {
    let (disk, ids) = build_disk(12);
    let store = FaultyStore::new(disk, FaultConfig::transient(fault_seed(), 0.3));
    let pool = ShardedBuffer::new(store, PolicyKind::Lru, 8, 2);
    pool.set_retry_policy(RetryPolicy {
        max_attempts: 12,
        base_backoff_ms: 0.1,
        backoff_multiplier: 2.0,
    });
    for round in 0..40u64 {
        let outcomes = pool.fetch_batch(&ids, ctx(round));
        assert_eq!(outcomes.len(), ids.len());
        for (slot, &id) in outcomes.iter().zip(&ids) {
            let (guard, _hit) = slot
                .as_ref()
                .expect("transient faults must be absorbed by per-page retries");
            assert_eq!(guard.id, id);
            assert!(guard.verify_checksum());
        }
    }
    let stats = pool.stats();
    assert_eq!(stats.logical_reads, 40 * ids.len() as u64);
    assert_eq!(stats.hits + stats.misses, stats.logical_reads);
    assert!(
        stats.retries > 0,
        "a 30% fault rate over 480 batched reads must trigger retries"
    );
    assert_eq!(
        stats.give_ups, 0,
        "retries exhausted under a 12-attempt policy"
    );
}

/// Give-ups are typed *per slot*: pages marked permanently failed come back
/// as `Err` slots carrying the failing page's id and a give-up error, while
/// sibling slots in the same batch succeed untouched.
#[test]
fn batched_fetch_fails_per_slot_not_per_batch() {
    let (disk, ids) = build_disk(12);
    let store = FaultyStore::new(disk, FaultConfig::reliable());
    store.mark_permanent(ids[3]);
    store.mark_permanent(ids[7]);
    let pool = ShardedBuffer::new(store, PolicyKind::Lru, 8, 2);
    let batch: Vec<PageId> = ids[..10].to_vec();
    let outcomes = pool.fetch_batch(&batch, ctx(1));
    assert_eq!(outcomes.len(), batch.len());
    for (slot, &id) in outcomes.iter().zip(&batch) {
        if id == ids[3] || id == ids[7] {
            let err = slot
                .as_ref()
                .expect_err("permanently failed page must fail");
            assert_eq!(err.id, id, "failure attributed to the failing page");
            assert!(
                err.is_give_up(),
                "device failure is a typed give-up: {err:?}"
            );
            assert!(!err.is_transient());
        } else {
            let (guard, hit) = slot
                .as_ref()
                .expect("healthy sibling slots must not be poisoned by a failing page");
            assert_eq!(guard.id, id);
            assert!(!hit, "cold pool: every delivered slot is a miss");
            assert!(guard.verify_checksum());
        }
    }
    drop(outcomes);
    let stats = pool.stats();
    assert_eq!(stats.give_ups, 2, "one give-up per failed slot");
    assert_eq!(stats.logical_reads, batch.len() as u64);
}

/// Satellite 1 end to end: a pool-shared `FaultyStore` can be poisoned and
/// healed mid-run through `with_store` (`mark_permanent`/`heal` take
/// `&self`). A resident copy keeps serving across the device failure; only
/// a refetch after eviction observes it, and healing restores the page.
#[test]
fn pool_shared_store_poison_and_heal_mid_run() {
    let (disk, ids) = build_disk(8);
    let store = FaultyStore::new(disk, FaultConfig::reliable());
    let pool = ShardedBuffer::new(store, PolicyKind::Lru, 2, 1);
    drop(pool.fetch(ids[2], ctx(0)).expect("warm read"));
    pool.with_store(|s| s.mark_permanent(ids[2]))
        .expect("no guards live");
    // The buffered copy is untouched by the device failure.
    drop(
        pool.fetch(ids[2], ctx(1))
            .expect("resident copy still serves"),
    );
    // Evict it (capacity 2, single shard, LRU): two fresh pages push it out.
    drop(pool.fetch(ids[0], ctx(2)).expect("read"));
    drop(pool.fetch(ids[1], ctx(3)).expect("read"));
    let err = pool
        .fetch(ids[2], ctx(4))
        .expect_err("refetch hits the dead device");
    assert!(matches!(err, StorageError::DeviceFailed(id) if id == ids[2]));
    pool.with_store(|s| s.heal(ids[2])).expect("no guards live");
    let healed = pool.fetch(ids[2], ctx(5)).expect("healed page reads again");
    assert!(healed.verify_checksum());
    drop(healed);
    assert_eq!(pool.stats().give_ups, 1);
}
