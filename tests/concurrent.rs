//! Multi-threaded integration tests for the shared buffer.

use asb::buffer::concurrent::SharedBuffer;
use asb::buffer::sync::{AtomicU64, Ordering};
use asb::buffer::{BufferManager, PolicyKind};
use asb::geom::SpatialStats;
use asb::storage::{AccessContext, DiskManager, PageId, PageMeta, PageStore, QueryId};
use bytes::Bytes;
use std::sync::Arc;

fn build_disk(pages: u64) -> (DiskManager, Vec<PageId>) {
    let mut disk = DiskManager::new();
    let ids = (0..pages)
        .map(|i| {
            disk.allocate(
                PageMeta::data(SpatialStats::EMPTY),
                Bytes::from(vec![i as u8]),
            )
            .expect("allocate")
        })
        .collect();
    (disk, ids)
}

#[test]
fn concurrent_readers_see_consistent_pages() {
    let (disk, ids) = build_disk(64);
    // The buffer covers the working set, so after warm-up every access
    // hits regardless of thread interleaving (a smaller buffer would make
    // the hit count schedule-dependent: 8 threads striding over 64 pages
    // is a cyclic scan, the classic zero-hit adversary).
    let shared = SharedBuffer::new(disk, BufferManager::with_policy(PolicyKind::Asb, 64));
    let total = Arc::new(AtomicU64::new(0));

    crossbeam::scope(|scope| {
        for t in 0..8 {
            let shared = shared.clone();
            let ids = ids.clone();
            let total = Arc::clone(&total);
            scope.spawn(move |_| {
                for i in 0..250u64 {
                    let slot = ((t * 13 + i * 7) % ids.len() as u64) as usize;
                    let page = shared
                        .fetch(ids[slot], AccessContext::query(QueryId::new(t * 1000 + i)))
                        .expect("read");
                    assert_eq!(page.payload.as_ref(), &[slot as u8][..]);
                    // relaxed-ok: independent success counter; the scope
                    // join publishes it before the final assertion reads it.
                    total.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    })
    .expect("threads join");

    // relaxed-ok: read after the scope join; no concurrent writers remain.
    assert_eq!(total.load(Ordering::Relaxed), 8 * 250);
    let stats = shared.stats();
    assert_eq!(stats.logical_reads, 8 * 250);
    assert_eq!(stats.hits + stats.misses, stats.logical_reads);
    // At most one cold miss per page.
    assert!(stats.misses <= 64);
    assert!(stats.hits >= stats.logical_reads - 64);
}

#[test]
fn concurrent_writers_and_readers_stay_coherent() {
    let (disk, ids) = build_disk(32);
    let shared = SharedBuffer::new(disk, BufferManager::with_policy(PolicyKind::Lru, 8));

    crossbeam::scope(|scope| {
        // Writers stamp pages with a marker byte; readers verify that any
        // observed payload is a valid stamp (original or any writer's).
        for w in 0..2u8 {
            let shared = shared.clone();
            let ids = ids.clone();
            scope.spawn(move |_| {
                for round in 0..100usize {
                    let slot = (round * 5 + w as usize) % ids.len();
                    let page = asb::storage::Page::new(
                        ids[slot],
                        PageMeta::data(SpatialStats::EMPTY),
                        Bytes::from(vec![200 + w]),
                    )
                    .expect("page");
                    shared.write(page).expect("write");
                }
            });
        }
        for r in 0..4u64 {
            let shared = shared.clone();
            let ids = ids.clone();
            scope.spawn(move |_| {
                for i in 0..200u64 {
                    let slot = ((r * 11 + i * 3) % ids.len() as u64) as usize;
                    let page = shared
                        .fetch(ids[slot], AccessContext::query(QueryId::new(i)))
                        .expect("read");
                    let b = page.payload[0];
                    assert!(
                        b == slot as u8 || b == 200 || b == 201,
                        "torn or stale payload: {b} at slot {slot}"
                    );
                }
            });
        }
    })
    .expect("threads join");
}
