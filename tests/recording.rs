//! `RecordingStore` behaviour: toggling, draining, and the placement
//! rule its module docs prescribe — the recorder sits *below* the index
//! and *above* the disk, never above a buffer, so the log captures the
//! full logical access sequence rather than only the buffer's misses.

use asb::buffer::{BufferManager, PolicyKind};
use asb::geom::{Rect, SpatialStats};
use asb::storage::{
    AccessContext, DiskManager, PageId, PageMeta, PageStore, QueryId, RecordingStore,
};
use bytes::Bytes;

fn build_disk(pages: u64) -> (DiskManager, Vec<PageId>) {
    let mut disk = DiskManager::new();
    let ids = (0..pages)
        .map(|i| {
            let r = Rect::new(0.0, 0.0, (i % 5) as f64 + 0.5, (i % 3) as f64 + 0.5);
            disk.allocate(
                PageMeta::data(SpatialStats::from_rects(&[r])),
                Bytes::from(vec![i as u8; 16]),
            )
            .expect("allocate")
        })
        .collect();
    (disk, ids)
}

fn ctx(q: u64) -> AccessContext {
    AccessContext::query(QueryId::new(q))
}

/// The recording toggle brackets the workload of interest: reads made
/// while recording is off (bulk load, warm-up) never enter the log, and
/// re-enabling resumes logging without losing what came before.
#[test]
fn toggling_brackets_the_recorded_window() {
    let (disk, ids) = build_disk(6);
    let mut store = RecordingStore::new(disk);
    assert!(store.is_recording(), "recording starts enabled");

    store.set_recording(false);
    for (i, &id) in ids.iter().enumerate() {
        store.read(id, ctx(i as u64)).expect("warm-up read");
    }
    assert_eq!(store.log_len(), 0, "warm-up reads are not logged");

    store.set_recording(true);
    store.read(ids[2], ctx(100)).expect("read");
    store.set_recording(false);
    store.read(ids[3], ctx(101)).expect("read");
    store.set_recording(true);
    store.read(ids[4], ctx(102)).expect("read");

    let log = store.take_log();
    assert_eq!(
        log,
        vec![(ids[2], QueryId::new(100)), (ids[4], QueryId::new(102)),],
        "only reads inside the recording window appear, in order"
    );
}

/// `take_log` drains: two drains never return the same access twice, so
/// a long run can be captured in chunks.
#[test]
fn draining_the_log_captures_in_chunks() {
    let (disk, ids) = build_disk(4);
    let mut store = RecordingStore::new(disk);
    store.read(ids[0], ctx(0)).expect("read");
    store.read(ids[1], ctx(1)).expect("read");
    let first = store.take_log();
    assert_eq!(first.len(), 2);
    assert_eq!(store.log_len(), 0, "the drain empties the log");

    store.read(ids[2], ctx(2)).expect("read");
    let second = store.take_log();
    assert_eq!(second, vec![(ids[2], QueryId::new(2))]);
    assert!(store.take_log().is_empty(), "nothing is returned twice");
}

/// Placement matters: a recorder *below* a buffer sees only the misses,
/// which is exactly why traces are recorded unbuffered. This test pins
/// the failure mode the module docs warn about — re-reading a resident
/// page leaves no trace in an under-buffer log.
#[test]
fn a_recorder_below_a_buffer_sees_only_misses() {
    let (disk, ids) = build_disk(8);
    let mut store = RecordingStore::new(disk);
    let mut buf = BufferManager::with_policy(PolicyKind::Lru, 4);

    // Touch two pages, then re-touch them while still resident.
    for (q, &id) in [ids[0], ids[1], ids[0], ids[1], ids[0]].iter().enumerate() {
        buf.fetch(&mut store, id, ctx(q as u64)).expect("read");
    }
    let stats = buf.stats();
    assert_eq!(stats.logical_reads, 5);
    assert_eq!(stats.misses, 2);

    let log = store.take_log();
    assert_eq!(
        log.len() as u64,
        stats.misses,
        "the under-buffer recorder logged only the physical reads"
    );
    assert_eq!(
        log.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        vec![ids[0], ids[1]],
        "hits left no trace — 3 of 5 logical accesses are missing"
    );
}
