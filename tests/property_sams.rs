//! Property-based tests for the quadtree and the z-order B⁺-tree: random
//! operation sequences validated against a brute-force model, plus
//! structural invariants after every burst.

use asb::geom::{Point, Rect, SpatialItem};
use asb::quadtree::{QuadConfig, QuadTree};
use asb::storage::DiskManager;
use asb::zbtree::ZBTree;
use proptest::prelude::*;

const WORLD: Rect = Rect {
    min: Point { x: 0.0, y: 0.0 },
    max: Point {
        x: 1024.0,
        y: 1024.0,
    },
};

fn small_rect() -> impl Strategy<Value = Rect> {
    (0.0f64..1000.0, 0.0f64..1000.0, 0.0f64..20.0, 0.0f64..20.0)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn inner_point() -> impl Strategy<Value = Point> {
    (0.0f64..1024.0, 0.0f64..1024.0).prop_map(|(x, y)| Point::new(x, y))
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Rect),
    DeleteNth(usize),
    Window(Rect),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            4 => small_rect().prop_map(Op::Insert),
            1 => (0usize..1000).prop_map(Op::DeleteNth),
            1 => small_rect().prop_map(Op::Window),
        ],
        1..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The quadtree agrees with a Vec model under arbitrary interleavings
    /// and stays structurally valid.
    #[test]
    fn quadtree_matches_model(ops in ops()) {
        let config = QuadConfig { max_depth: 8, bucket_capacity: 6 };
        let mut tree = QuadTree::with_config(DiskManager::new(), WORLD, config).unwrap();
        let mut model: Vec<SpatialItem> = Vec::new();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                Op::Insert(mbr) => {
                    tree.insert(SpatialItem::new(next_id, mbr)).unwrap();
                    model.push(SpatialItem::new(next_id, mbr));
                    next_id += 1;
                }
                Op::DeleteNth(n) => {
                    if !model.is_empty() {
                        let victim = model.remove(n % model.len());
                        prop_assert!(tree.delete(victim.id, &victim.mbr).unwrap());
                    }
                }
                Op::Window(w) => {
                    let mut got = tree.window_query(w).unwrap();
                    got.sort_unstable();
                    let mut want: Vec<u64> = model
                        .iter()
                        .filter(|it| it.mbr.intersects(&w))
                        .map(|it| it.id)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
            }
        }
        tree.validate().map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(tree.len(), model.len());
    }

    /// The z-B⁺-tree agrees with a point model (point-in-window semantics)
    /// and stays valid through splits, merges and borrows.
    #[test]
    fn zbtree_matches_model(
        points in prop::collection::vec(inner_point(), 1..250),
        deletions in prop::collection::vec(0usize..250, 0..120),
        windows in prop::collection::vec(small_rect(), 1..12),
    ) {
        let mut tree = ZBTree::new(DiskManager::new(), WORLD).unwrap();
        let mut model: Vec<(u64, Point)> = Vec::new();
        for (i, p) in points.iter().enumerate() {
            tree.insert(i as u64, *p).unwrap();
            model.push((i as u64, *p));
        }
        for d in deletions {
            if model.is_empty() {
                break;
            }
            let (id, p) = model.remove(d % model.len());
            prop_assert!(tree.delete(id, &p).unwrap());
        }
        tree.validate().map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(tree.len(), model.len());
        for w in windows {
            let mut got = tree.window_query(w).unwrap();
            got.sort_unstable();
            let mut want: Vec<u64> = model
                .iter()
                .filter(|(_, p)| w.contains_point(p))
                .map(|&(id, _)| id)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "window {:?}", w);
        }
    }

    /// All three access methods return the same object sets for window
    /// queries over point data (where their semantics coincide).
    #[test]
    fn three_sams_agree_on_point_data(
        points in prop::collection::vec(inner_point(), 1..200),
        windows in prop::collection::vec(small_rect(), 1..8),
    ) {
        use asb::rtree::{RTree, RTreeConfig};
        let items: Vec<SpatialItem> = points
            .iter()
            .enumerate()
            .map(|(i, p)| SpatialItem::new(i as u64, Rect::from_point(*p)))
            .collect();
        let pairs: Vec<(u64, Point)> =
            points.iter().enumerate().map(|(i, p)| (i as u64, *p)).collect();

        let mut rtree =
            RTree::bulk_load_with(DiskManager::new(), RTreeConfig::small(), &items).unwrap();
        let mut quad = QuadTree::with_config(
            DiskManager::new(),
            WORLD,
            QuadConfig { max_depth: 8, bucket_capacity: 6 },
        )
        .unwrap();
        for it in &items {
            quad.insert(*it).unwrap();
        }
        let mut zb = ZBTree::bulk_load(DiskManager::new(), WORLD, &pairs).unwrap();

        for w in windows {
            let mut a = rtree.window_query(w).unwrap();
            let mut b = quad.window_query(w).unwrap();
            let mut c = zb.window_query(w).unwrap();
            a.sort_unstable();
            b.sort_unstable();
            c.sort_unstable();
            prop_assert_eq!(&a, &b, "rtree vs quadtree on {:?}", w);
            prop_assert_eq!(&a, &c, "rtree vs zbtree on {:?}", w);
        }
    }
}
